//! Lock-free, process-global metrics and span tracing for the anmat
//! engine — counters, gauges, log₂-bucketed latency histograms, and RAII
//! span timers, all readable as one stable JSON snapshot.
//!
//! # Design
//!
//! The registry follows the same discipline as `anmat_table::ValuePool`:
//! a process-global store whose *hot path is wait-free* and whose locks
//! exist only on the cold registration path. Each metric is a leaked
//! `&'static` cell of atomics; recording is a handful of `Relaxed`
//! `fetch_add`s with no lock, no allocation, and no syscall. The only
//! `Mutex` guards the name → metric map, taken once per *call site*
//! (sites cache their `&'static` handle in a local `OnceLock` via the
//! [`counter!`], [`gauge!`], [`histogram!`], and [`span!`] macros) and
//! once per [`MetricsSnapshot::capture`].
//!
//! Everything is gated behind the global [`Recorder`]: when disabled
//! (the default), every record call is a single `Relaxed` load of a
//! static `AtomicBool` plus a branch — cheap enough to leave
//! instrumentation in release hot loops. Compiling with the `off`
//! feature turns [`enabled`] into a `const false`, folding every
//! instrumentation site away entirely.
//!
//! Metrics deliberately never feed back into the code they observe:
//! recording cannot fail, cannot block, and returns no value a caller
//! could branch on, so an instrumented run is bit-for-bit equivalent to
//! an uninstrumented one (the shard-equivalence suite asserts this).
//!
//! # Histograms
//!
//! [`Histogram`] buckets samples by bit length: bucket `0` holds the
//! value `0`, bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`, and bucket `64`
//! tops out at `u64::MAX` — 65 buckets of `AtomicU64` covering the full
//! `u64` range with one `leading_zeros` and one `fetch_add` per sample.
//! Quantile readout ([`HistogramSnapshot::p50`] / `p90` / `p99`) is the
//! nearest-rank bucket upper bound, clamped to the exact tracked `max`.
//!
//! # Naming
//!
//! Metric names are dot-separated families: `pool.*`, `table.*`,
//! `index.*`, `engine.*`, `shard.*` (with per-shard instances like
//! `shard.3.queue_depth`), and `ledger.*`. A name maps to exactly one
//! metric kind; re-registering under a different kind panics.
//!
//! # Example
//!
//! ```
//! use anmat_obs as obs;
//!
//! obs::Recorder::enable();
//! obs::counter!("example.ops").add(3);
//! obs::gauge!("example.depth").set(7);
//! {
//!     let _span = obs::span!("example.phase_ns");
//!     // ... timed region ...
//! }
//! let snap = obs::MetricsSnapshot::capture();
//! assert_eq!(snap.counter("example.ops"), Some(3));
//! assert_eq!(snap.gauge("example.depth"), Some(7));
//! assert!(snap.to_json().contains("example.phase_ns"));
//! obs::Recorder::disable();
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of log₂ buckets in a [`Histogram`]: bucket `i` is the set of
/// `u64` values with bit length `i` (plus bucket `0` for zero itself).
pub const HISTOGRAM_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is the recorder currently capturing? One `Relaxed` load + branch —
/// the entire cost of an instrumentation site while disabled.
#[cfg(not(feature = "off"))]
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// With the `off` feature the recorder is compiled out: `enabled()` is
/// `const false` and every instrumentation site folds to nothing.
#[cfg(feature = "off")]
#[inline(always)]
#[must_use]
pub const fn enabled() -> bool {
    false
}

/// The global on/off switch for metric capture.
///
/// Disabled by default. Flipping it affects the whole process; metric
/// cells and their registrations persist across disable/enable cycles
/// (values are monotone unless the process restarts).
pub struct Recorder;

impl Recorder {
    /// Start capturing metrics process-wide.
    pub fn enable() {
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Stop capturing. Registered metrics keep their accumulated values.
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Is capture currently on?
    #[must_use]
    pub fn is_enabled() -> bool {
        enabled()
    }
}

/// A monotonically increasing `u64` event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter (no-op while the recorder is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins signed level (queue depths, byte totals, live
/// counts). Unlike [`Counter`], a gauge can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge (no-op while the recorder is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Move the gauge up by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Move the gauge down by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        if enabled() {
            self.value.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Which log₂ bucket a sample lands in: its bit length (`0` for `0`).
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Smallest value bucket `i` admits: `0`, then `2^(i-1)`.
#[inline]
#[must_use]
pub fn bucket_floor(i: usize) -> u64 {
    debug_assert!(i < HISTOGRAM_BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value bucket `i` admits: `0`, then `2^i - 1` (saturating at
/// `u64::MAX` for the top bucket).
#[inline]
#[must_use]
pub fn bucket_ceil(i: usize) -> u64 {
    debug_assert!(i < HISTOGRAM_BUCKETS);
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log₂-bucketed `u64` distribution (latencies in
/// nanoseconds, sizes in bytes/rows). One `fetch_add` per bucket plus
/// count/sum/max updates per sample, all `Relaxed`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample (no-op while the recorder is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (individual loads are
    /// `Relaxed`; concurrent writers may skew count vs buckets by the
    /// samples in flight).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`], with quantile readout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Largest sample seen (exact, not bucketed).
    pub max: u64,
    /// Per-bucket sample counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate for `q` in `[0, 1]`: the upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` sample, clamped
    /// to the exact tracked max. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_ceil(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample (0 for an empty histogram).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// RAII span timer: records wall-clock nanoseconds into a histogram
/// when dropped. Construct via [`span!`] (or [`Span::start`]) and bind
/// it — `let _span = obs::span!("engine.apply_ns");`.
///
/// While the recorder is disabled the guard is inert: no clock read on
/// entry, no record on drop.
#[must_use = "a span records on drop; bind it with `let _span = ...`"]
pub struct Span {
    live: Option<(Instant, &'static Histogram)>,
}

impl Span {
    /// Start timing into `hist` (inert while the recorder is disabled).
    pub fn start(hist: &'static Histogram) -> Span {
        Span {
            live: enabled().then(|| (Instant::now(), hist)),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.live.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(ns);
        }
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

macro_rules! register {
    ($fn_name:ident, $ty:ident) => {
        /// Get or register the named metric. The returned handle is
        /// `'static`; cache it (see the site-caching macros) rather than
        /// re-resolving per record.
        ///
        /// # Panics
        /// If `name` is already registered as a different metric kind.
        #[must_use]
        pub fn $fn_name(name: &str) -> &'static $ty {
            let mut reg = registry()
                .lock()
                // A panic while holding the lock (e.g. a kind-mismatch
                // registration) never leaves the map mid-mutation, so the
                // poisoned state is safe to adopt.
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(existing) = reg.get(name) {
                match existing {
                    Metric::$ty(m) => return m,
                    _ => panic!("metric `{name}` already registered as a different kind"),
                }
            }
            let cell: &'static $ty = Box::leak(Box::new($ty::default()));
            reg.insert(name.to_string(), Metric::$ty(cell));
            cell
        }
    };
}

register!(counter, Counter);
register!(gauge, Gauge);
register!(histogram, Histogram);

/// Resolve a [`Counter`] once per call site and cache the `&'static`
/// handle in a site-local `OnceLock`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::counter($name))
    }};
}

/// Resolve a [`Gauge`] once per call site (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Resolve a [`Histogram`] once per call site (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::histogram($name))
    }};
}

/// Time a region into the named histogram: binds an RAII [`Span`] that
/// records elapsed nanoseconds on drop.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::start($crate::histogram!($name))
    };
}

/// A stable, ordered snapshot of every registered metric.
///
/// Names are sorted; repeated captures of an idle registry are
/// byte-identical, and [`MetricsSnapshot::to_json`] emits keys in that
/// same order, so the JSON is diff-stable.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, count)` for every registered counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every registered gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every registered histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Capture the current value of every registered metric.
    #[must_use]
    pub fn capture() -> MetricsSnapshot {
        let reg = registry()
            .lock()
            // A panic while holding the lock (e.g. a kind-mismatch
            // registration) never leaves the map mid-mutation, so the
            // poisoned state is safe to adopt.
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in reg.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }

    /// Value of a named counter, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a named gauge, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Snapshot of a named histogram, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Render as a stable, pretty-printed JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": { "ledger.created": 12 },
    ///   "gauges": { "table.live": 4096 },
    ///   "histograms": {
    ///     "engine.apply_ns": {
    ///       "count": 3, "sum": 210, "max": 90,
    ///       "p50": 63, "p90": 90, "p99": 90,
    ///       "buckets": [[32, 1], [64, 2]]
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// `buckets` lists `[bucket_floor, samples]` pairs for non-empty
    /// buckets only. Keys are name-sorted; output is deterministic for
    /// a given registry state and parses back through any JSON reader.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        push_close(&mut out, self.counters.is_empty(), "  ");
        out.push_str(",\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        push_close(&mut out, self.gauges.is_empty(), "  ");
        out.push_str(",\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_key(&mut out, name);
            out.push_str(&format!(
                "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p90(),
                h.p99()
            ));
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    out.push_str(&format!("[{}, {}]", bucket_floor(b), n));
                }
            }
            out.push_str("]}");
        }
        push_close(&mut out, self.histograms.is_empty(), "  ");
        out.push_str("\n}\n");
        out
    }
}

fn push_sep(out: &mut String, i: usize, indent: &str) {
    if i > 0 {
        out.push(',');
    }
    out.push('\n');
    out.push_str(indent);
}

fn push_key(out: &mut String, name: &str) {
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\": ");
}

fn push_close(out: &mut String, empty: bool, indent: &str) {
    if !empty {
        out.push('\n');
        out.push_str(indent);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Unit tests in this binary run in parallel but share the global
    /// recorder flag — tests that toggle it take this lock.
    fn recorder_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn bucket_boundaries_round_trip_u64_extremes() {
        // Every bucket's floor and ceiling land back in that bucket.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
            assert_eq!(bucket_index(bucket_ceil(i)), i, "ceil of bucket {i}");
        }
        // Extremes and powers of two.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        for k in 1..64 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k + 1, "2^{k}");
            assert_eq!(bucket_index(v - 1), k, "2^{k} - 1");
            assert!(bucket_floor(bucket_index(v)) <= v);
            assert!(v <= bucket_ceil(bucket_index(v)));
        }
    }

    #[test]
    fn disabled_recorder_drops_samples() {
        let _guard = recorder_lock();
        Recorder::disable();
        let c = counter("test.disabled.count");
        let h = histogram("test.disabled.hist");
        c.add(5);
        h.record(100);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_track_bucket_upper_bounds() {
        let _guard = recorder_lock();
        Recorder::enable();
        let h = histogram("test.quantiles");
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 1110);
        // Rank 3 of 6 → the sample `3` → bucket 2 (values 2..=3).
        assert_eq!(s.p50(), 3);
        // p99 → rank 6 → the sample 1000 → bucket ceil 1023, clamped to max.
        assert_eq!(s.p99(), 1000);
        assert_eq!(s.quantile(0.0), 1);
        Recorder::disable();
    }

    #[test]
    fn snapshot_json_is_stable_and_escaped() {
        let _guard = recorder_lock();
        Recorder::enable();
        counter("test.json.a").incr();
        gauge("test.json.b").set(-3);
        let one = MetricsSnapshot::capture();
        let two = MetricsSnapshot::capture();
        assert_eq!(one.to_json(), two.to_json());
        assert!(one.to_json().contains("\"test.json.a\": 1"));
        assert!(one.to_json().contains("\"test.json.b\": -3"));
        Recorder::disable();
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let _ = counter("test.kind.clash");
        let _ = gauge("test.kind.clash");
    }
}
