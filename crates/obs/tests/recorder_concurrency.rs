//! Recorder concurrency hammer — the contract the instrumented engine
//! leans on: many threads racing `fetch_add`s on shared counters and
//! histograms must lose nothing (exact totals), histogram bucket sums
//! must equal sample counts, and registration races on one name must
//! converge on a single metric cell. Mirrors the shape of
//! `crates/table/tests/pool_concurrency.rs`.

use anmat_obs::{self as obs, MetricsSnapshot, Recorder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

const THREADS: usize = 8;
const ROUNDS: usize = 4_000;

#[test]
fn racing_counters_and_histograms_lose_nothing() {
    Recorder::enable();
    // Every thread resolves the same names through the site-caching
    // macros *and* the cold registration path, so the registration race
    // itself is exercised alongside the recording race.
    let per_thread: Vec<(u64, u64)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut added = 0u64;
                    let mut samples = 0u64;
                    for round in 0..ROUNDS {
                        let n = ((round + t) % 7 + 1) as u64;
                        // Alternate macro-cached and freshly resolved
                        // handles — both must land on the same cell.
                        if round % 2 == 0 {
                            obs::counter!("hammer.count").add(n);
                        } else {
                            obs::counter("hammer.count").add(n);
                        }
                        added += n;
                        // Samples span many buckets, including the
                        // extremes bucket 0 and the top bucket.
                        let v = match round % 5 {
                            0 => 0,
                            1 => n,
                            2 => n << 20,
                            3 => u64::MAX,
                            _ => 1u64 << (round % 63),
                        };
                        obs::histogram!("hammer.hist").record(v);
                        samples += 1;
                        obs::gauge!("hammer.level").add(1);
                        obs::gauge!("hammer.level").sub(1);
                    }
                    (added, samples)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });

    let expected_total: u64 = per_thread.iter().map(|(a, _)| a).sum();
    let expected_samples: u64 = per_thread.iter().map(|(_, s)| s).sum();
    assert_eq!(expected_samples, (THREADS * ROUNDS) as u64);

    // Exact counts: no increment lost under contention.
    assert_eq!(obs::counter("hammer.count").get(), expected_total);

    // Bucket sums equal the sample count exactly: no sample lost and
    // none double-bucketed.
    let hist = obs::histogram("hammer.hist").snapshot();
    assert_eq!(hist.count, expected_samples);
    assert_eq!(hist.buckets.iter().sum::<u64>(), expected_samples);
    assert_eq!(hist.max, u64::MAX);
    // Extremes landed where the boundary math says they must.
    assert!(hist.buckets[0] > 0, "zero samples populate bucket 0");
    assert!(hist.buckets[64] > 0, "u64::MAX samples populate bucket 64");

    // Balanced add/sub leaves the gauge level at zero.
    assert_eq!(obs::gauge("hammer.level").get(), 0);

    // The snapshot view agrees with the handles.
    let snap = MetricsSnapshot::capture();
    assert_eq!(snap.counter("hammer.count"), Some(expected_total));
    assert_eq!(snap.gauge("hammer.level"), Some(0));
    assert_eq!(
        snap.histogram("hammer.hist").map(|h| h.count),
        Some(expected_samples)
    );
}

#[test]
fn spans_record_while_writers_hammer() {
    Recorder::enable();
    // Span guards record on drop while other threads keep the registry's
    // record path hot — the reader quota completes regardless.
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        for _ in 0..2 {
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    obs::counter!("spanstorm.noise").incr();
                }
            });
        }
        for _ in 0..400 {
            let _span = obs::span!("spanstorm.span_ns");
        }
        stop.store(true, Ordering::Relaxed);
    });
    let hist = obs::histogram("spanstorm.span_ns").snapshot();
    assert_eq!(hist.count, 400);
    assert_eq!(hist.buckets.iter().sum::<u64>(), 400);
}
