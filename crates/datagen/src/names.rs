//! Full Name → Gender (Table 3, block D2).
//!
//! Records are rendered `Last, First M.` / `Last, First` (the paper's
//! rows: `Holloway, Donald E.`, `Kimbell, David` …). The first name
//! determines the gender; injected errors flip it — the paper's error
//! column is exactly flipped genders.

use crate::{Dataset, ErrorInjector, GenConfig};
use anmat_table::{Schema, Table, Value};
use rand::Rng;

/// First name → gender, starting with the paper's five.
pub const FIRST_NAMES: &[(&str, &str)] = &[
    ("Donald", "M"), // paper row 1
    ("Stacey", "F"), // paper row 2
    ("David", "M"),  // paper row 3
    ("Jerry", "M"),  // paper row 4
    ("Alan", "M"),   // paper row 5
    ("Susan", "F"),
    ("John", "M"),
    ("Alice", "F"),
    ("Maria", "F"),
    ("Peter", "M"),
    ("Linda", "F"),
    ("James", "M"),
];

/// Last-name pool (the paper's plus filler).
pub const LAST_NAMES: &[&str] = &[
    "Holloway", "Jones", "Kimbell", "Mallack", "Otillio", "Smith", "Brown", "Davis", "Wilson",
    "Moore", "Taylor", "Clark", "Walker", "Young", "Allen", "King",
];

/// Generate the D2-style full-name/gender dataset.
#[must_use]
pub fn generate(config: &GenConfig) -> Dataset {
    let mut rng = config.rng();
    let schema = Schema::new(["full_name", "gender"]).expect("static names");
    let mut table = Table::empty(schema);
    for _ in 0..config.rows {
        let (first, gender) = FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())];
        let last = LAST_NAMES[rng.random_range(0..LAST_NAMES.len())];
        // ~60% carry a middle initial, like the paper's examples.
        let name = if rng.random_range(0..10) < 6 {
            let initial = char::from(b'A' + rng.random_range(0..26) as u8);
            format!("{last}, {first} {initial}.")
        } else {
            format!("{last}, {first}")
        };
        table
            .push_row(vec![Value::text(name), Value::text(gender)])
            .expect("arity 2");
    }
    let injector = ErrorInjector::wrong_value_only(vec!["M".to_string(), "F".to_string()]);
    let errors = injector.corrupt(&mut table, 1, config.error_count(), &mut rng);
    Dataset { table, errors }
}

/// Gender of a first name per the generator dictionary.
#[must_use]
pub fn gender_of(first: &str) -> Option<&'static str> {
    FIRST_NAMES
        .iter()
        .find(|(n, _)| *n == first)
        .map(|(_, g)| *g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let d = generate(&GenConfig {
            rows: 100,
            seed: 2,
            error_rate: 0.0,
        });
        for (_, v) in d.table.iter_column(0) {
            let s = v.as_str().unwrap();
            assert!(s.contains(", "), "{s}");
            let after_comma = s.split(", ").nth(1).unwrap();
            let first = after_comma.split(' ').next().unwrap();
            assert!(gender_of(first).is_some(), "{s}");
        }
    }

    #[test]
    fn clean_rows_respect_dependency() {
        let d = generate(&GenConfig {
            rows: 400,
            seed: 3,
            error_rate: 0.02,
        });
        let bad = d.error_rows();
        for (row, name, gender) in d.table.iter_pair(0, 1) {
            if bad.contains(&row) {
                continue;
            }
            let first = name.split(", ").nth(1).unwrap().split(' ').next().unwrap();
            assert_eq!(gender, gender_of(first).unwrap(), "row {row}: {name}");
        }
    }

    #[test]
    fn errors_flip_gender() {
        let d = generate(&GenConfig {
            rows: 400,
            seed: 4,
            error_rate: 0.05,
        });
        assert!(!d.errors.is_empty());
        for e in &d.errors {
            let flipped = if e.original == "M" { "F" } else { "M" };
            assert_eq!(e.corrupted.as_deref(), Some(flipped));
        }
    }
}
