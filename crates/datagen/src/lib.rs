//! Seeded synthetic dataset generators mirroring the ANMAT demo datasets.
//!
//! The paper demonstrates on data.gov extracts, ChEMBL, and private
//! MIT/Qatar datasets we cannot obtain. Discovery and detection operate on
//! the *pattern/value co-occurrence structure* of those tables, so each
//! generator here reproduces exactly the structure the paper exploits —
//! seeded and deterministic, with ground-truth error labels:
//!
//! * [`phone`] — NANP phone → state (Table 3 block D1): area-code prefix
//!   determines the state, using the paper's five area codes plus more;
//! * [`names`] — full name → gender (Table 3 block D2): "Last, First M."
//!   records where the first name determines the gender, with the paper's
//!   five first names in the dictionary;
//! * [`zipcity`] — zip → city/state (Table 3 block D5): `6060\D` →
//!   Chicago, `900\D{2}` → Los Angeles, `95\D{3}` → California, with the
//!   paper's exact error types (truncations "Chicag", transpositions
//!   "Chciago", case errors "lL", wrong constants);
//! * [`employee`] — the §1 motivating example: IDs like `F-9-107` whose
//!   letter prefix determines the department and digit the grade;
//! * [`chembl`] — ChEMBL-like single-token compound codes, exercising the
//!   n-gram extraction path the paper says ChEMBL is for.
//!
//! [`inject`] provides the shared error injector with typed corruption
//! kinds and ground-truth reporting; every generator uses it.

pub mod chembl;
pub mod employee;
pub mod inject;
pub mod names;
pub mod phone;
pub mod zipcity;

pub use inject::{CorruptionKind, ErrorInjector, InjectedError};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Common generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed (same seed ⇒ identical table and errors).
    pub seed: u64,
    /// Fraction of rows corrupted (ground truth recorded).
    pub error_rate: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            rows: 1000,
            seed: 0xA17,
            error_rate: 0.01,
        }
    }
}

impl GenConfig {
    /// A fresh RNG for this config.
    #[must_use]
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// Target number of corrupted rows.
    #[must_use]
    pub fn error_count(&self) -> usize {
        ((self.rows as f64) * self.error_rate).round() as usize
    }
}

/// A generated table with its ground-truth error labels.
#[derive(Debug)]
pub struct Dataset {
    /// The (dirty) table.
    pub table: anmat_table::Table,
    /// The corruptions applied, with originals.
    pub errors: Vec<InjectedError>,
}

impl Dataset {
    /// The set of corrupted row ids.
    #[must_use]
    pub fn error_rows(&self) -> std::collections::HashSet<usize> {
        self.errors.iter().map(|e| e.row).collect()
    }

    /// Precision/recall of a flagged row set against the ground truth.
    #[must_use]
    pub fn score(&self, flagged: &[usize]) -> Score {
        let truth = self.error_rows();
        let flagged: std::collections::HashSet<usize> = flagged.iter().copied().collect();
        let tp = flagged.intersection(&truth).count();
        Score {
            true_positives: tp,
            false_positives: flagged.len() - tp,
            false_negatives: truth.len() - tp,
        }
    }
}

/// Detection quality against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Score {
    /// Flagged rows that were truly corrupted.
    pub true_positives: usize,
    /// Flagged rows that were clean.
    pub false_positives: usize,
    /// Corrupted rows not flagged.
    pub false_negatives: usize,
}

impl Score {
    /// `tp / (tp + fp)`, 1.0 when nothing was flagged.
    #[must_use]
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`, 1.0 when nothing was corrupted.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_arithmetic() {
        let s = Score {
            true_positives: 8,
            false_positives: 2,
            false_negatives: 2,
        };
        assert!((s.precision() - 0.8).abs() < 1e-9);
        assert!((s.recall() - 0.8).abs() < 1e-9);
        assert!((s.f1() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn score_degenerate() {
        let s = Score {
            true_positives: 0,
            false_positives: 0,
            false_negatives: 0,
        };
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn config_error_count() {
        let c = GenConfig {
            rows: 1000,
            error_rate: 0.013,
            ..GenConfig::default()
        };
        assert_eq!(c.error_count(), 13);
    }
}
