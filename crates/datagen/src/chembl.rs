//! ChEMBL-like compound records.
//!
//! The paper demonstrates on ChEMBL downloads and notes that "n-grams are
//! mainly used to extract patterns from attributes that contain \[a\]
//! single token which could be a code or ids". This generator produces
//! `CHEMBL\D+` compound ids plus code columns whose values correlate with
//! id structure: the id's digit-count bucket determines an era code
//! (mirroring how low ChEMBL ids are early-deposited compounds).

use crate::{Dataset, ErrorInjector, GenConfig};
use anmat_table::{Schema, Table, Value};
use rand::Rng;

/// Digit-count → era code.
pub const ERAS: &[(usize, &str)] = &[(4, "ERA1"), (5, "ERA2"), (6, "ERA3")];

/// Generate the ChEMBL-like dataset. Errors corrupt the era column.
#[must_use]
pub fn generate(config: &GenConfig) -> Dataset {
    let mut rng = config.rng();
    let schema = Schema::new(["chembl_id", "era", "phase"]).expect("static names");
    let mut table = Table::empty(schema);
    for _ in 0..config.rows {
        let (digits, era) = ERAS[rng.random_range(0..ERAS.len())];
        let low = 10u64.pow(digits as u32 - 1);
        let high = 10u64.pow(digits as u32);
        let id_num = rng.random_range(low..high);
        let phase = rng.random_range(0..5u32);
        table
            .push_row(vec![
                Value::text(format!("CHEMBL{id_num}")),
                Value::text(era),
                Value::text(phase.to_string()),
            ])
            .expect("arity 3");
    }
    let injector =
        ErrorInjector::wrong_value_only(ERAS.iter().map(|(_, e)| (*e).to_string()).collect());
    let errors = injector.corrupt(&mut table, 1, config.error_count(), &mut rng);
    Dataset { table, errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_have_chembl_prefix() {
        let d = generate(&GenConfig {
            rows: 100,
            ..GenConfig::default()
        });
        for (_, v) in d.table.iter_column(0) {
            let s = v.as_str().unwrap();
            assert!(s.starts_with("CHEMBL"), "{s}");
            assert!(s[6..].chars().all(|c| c.is_ascii_digit()), "{s}");
        }
    }

    #[test]
    fn digit_count_determines_era_on_clean_rows() {
        let d = generate(&GenConfig {
            rows: 300,
            seed: 31,
            error_rate: 0.02,
        });
        let bad = d.error_rows();
        for row in 0..d.table.row_count() {
            if bad.contains(&row) {
                continue;
            }
            let id = d.table.cell_str(row, 0).unwrap();
            let digits = id.len() - 6;
            let era = ERAS.iter().find(|(n, _)| *n == digits).map(|(_, e)| *e);
            assert_eq!(d.table.cell_str(row, 1), era, "{id}");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = GenConfig {
            rows: 64,
            seed: 99,
            error_rate: 0.05,
        };
        assert_eq!(generate(&cfg).table, generate(&cfg).table);
    }
}
