//! Employee IDs — the §1 motivating example.
//!
//! "In an employee table, ID `F-9-107`: `F` determines the financial
//! department, and `9` determines one's grade." IDs are
//! `<dept letter>-<grade digit>-<serial>`; the table carries the
//! department and grade columns those ID fragments determine. Exercises
//! the n-gram path (single-token code column) with a *mid-string*
//! determinant — the grade digit at character 2.

use crate::{Dataset, ErrorInjector, GenConfig};
use anmat_table::{Schema, Table, Value};
use rand::Rng;

/// Department letter → name.
pub const DEPARTMENTS: &[(char, &str)] = &[
    ('F', "Finance"),
    ('E', "Engineering"),
    ('S', "Sales"),
    ('H', "HR"),
    ('M', "Marketing"),
];

/// Generate the employee-ID dataset. Errors corrupt the department column.
#[must_use]
pub fn generate(config: &GenConfig) -> Dataset {
    let mut rng = config.rng();
    let schema = Schema::new(["emp_id", "department", "grade"]).expect("static names");
    let mut table = Table::empty(schema);
    for _ in 0..config.rows {
        let (letter, dept) = DEPARTMENTS[rng.random_range(0..DEPARTMENTS.len())];
        let grade = rng.random_range(1..=9u32);
        let serial: u32 = rng.random_range(100..1000);
        table
            .push_row(vec![
                Value::text(format!("{letter}-{grade}-{serial}")),
                Value::text(dept),
                Value::text(format!("G{grade}")),
            ])
            .expect("arity 3");
    }
    let injector = ErrorInjector::wrong_value_only(
        DEPARTMENTS.iter().map(|(_, d)| (*d).to_string()).collect(),
    );
    let errors = injector.corrupt(&mut table, 1, config.error_count(), &mut rng);
    Dataset { table, errors }
}

/// The clean department for an ID per the generator mapping.
#[must_use]
pub fn department_of(id: &str) -> Option<&'static str> {
    let first = id.chars().next()?;
    DEPARTMENTS
        .iter()
        .find(|(l, _)| *l == first)
        .map(|(_, d)| *d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_shape() {
        let d = generate(&GenConfig {
            rows: 100,
            ..GenConfig::default()
        });
        for (_, v) in d.table.iter_column(0) {
            let s = v.as_str().unwrap();
            let parts: Vec<&str> = s.split('-').collect();
            assert_eq!(parts.len(), 3, "{s}");
            assert_eq!(parts[0].len(), 1);
            assert_eq!(parts[1].len(), 1);
            assert_eq!(parts[2].len(), 3);
        }
    }

    #[test]
    fn prefix_determines_department_on_clean_rows() {
        let d = generate(&GenConfig {
            rows: 300,
            seed: 23,
            error_rate: 0.02,
        });
        let bad = d.error_rows();
        for row in 0..d.table.row_count() {
            if bad.contains(&row) {
                continue;
            }
            let id = d.table.cell_str(row, 0).unwrap();
            assert_eq!(d.table.cell_str(row, 1), Some(department_of(id).unwrap()));
        }
    }

    #[test]
    fn grade_digit_matches_grade_column() {
        let d = generate(&GenConfig {
            rows: 100,
            seed: 29,
            error_rate: 0.0,
        });
        for row in 0..d.table.row_count() {
            let id = d.table.cell_str(row, 0).unwrap();
            let digit = id.chars().nth(2).unwrap();
            let grade = d.table.cell_str(row, 2).unwrap();
            assert_eq!(grade, format!("G{digit}"));
        }
    }
}
