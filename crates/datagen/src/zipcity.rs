//! ZIP → CITY and ZIP → STATE (Table 3, block D5).
//!
//! Zip prefixes determine city and state: `6060\D` → Chicago/IL,
//! `900\D{2}` → Los Angeles/CA, `956\D{2}` → Auburn/CA (the paper's
//! `95603 | MI` error row is a 956xx California zip). City errors are
//! truncations and transpositions (`Chicag`, `C`, `Chciago`); state errors
//! are case flips (`lL`) and wrong constants (`MI`).

use crate::inject::CorruptionKind;
use crate::{Dataset, ErrorInjector, GenConfig};
use anmat_table::{Schema, Table, Value};
use rand::Rng;

/// Zip prefix → (city, state).
pub const ZIP_PREFIXES: &[(&str, &str, &str)] = &[
    ("6060", "Chicago", "IL"),    // paper D5 rows
    ("900", "Los Angeles", "CA"), // Tables 1–2
    ("956", "Auburn", "CA"),      // the paper's 95603
    ("100", "New York", "NY"),
    ("021", "Boston", "MA"),
    ("770", "Houston", "TX"),
];

/// Which column of the generated table to corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipTarget {
    /// Corrupt the city column (truncate/transpose, per the paper).
    City,
    /// Corrupt the state column (case flips and wrong constants).
    State,
}

/// Generate the D5-style zip/city/state dataset, corrupting the chosen
/// column.
#[must_use]
pub fn generate(config: &GenConfig, target: ZipTarget) -> Dataset {
    let mut rng = config.rng();
    let schema = Schema::new(["zip", "city", "state"]).expect("static names");
    let mut table = Table::empty(schema);
    for _ in 0..config.rows {
        let (prefix, city, state) = ZIP_PREFIXES[rng.random_range(0..ZIP_PREFIXES.len())];
        let suffix_len = 5 - prefix.len();
        let suffix: String = (0..suffix_len)
            .map(|_| char::from(b'0' + rng.random_range(0..10) as u8))
            .collect();
        table
            .push_row(vec![
                Value::text(format!("{prefix}{suffix}")),
                Value::text(city),
                Value::text(state),
            ])
            .expect("arity 3");
    }
    let (col, injector) = match target {
        ZipTarget::City => (
            1,
            ErrorInjector {
                kinds: vec![CorruptionKind::Truncate, CorruptionKind::Transpose],
                pool: ZIP_PREFIXES
                    .iter()
                    .map(|(_, c, _)| (*c).to_string())
                    .collect(),
            },
        ),
        ZipTarget::State => (
            2,
            ErrorInjector {
                kinds: vec![CorruptionKind::CaseFlip, CorruptionKind::WrongValue],
                pool: vec!["MI".into(), "lL".into(), "WA".into(), "OR".into()],
            },
        ),
    };
    let errors = injector.corrupt(&mut table, col, config.error_count(), &mut rng);
    Dataset { table, errors }
}

/// The clean (city, state) for a zip per the generator mapping.
#[must_use]
pub fn city_state_of(zip: &str) -> Option<(&'static str, &'static str)> {
    ZIP_PREFIXES
        .iter()
        .find(|(p, _, _)| zip.starts_with(p))
        .map(|(_, c, s)| (*c, *s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zips_are_five_digits() {
        let d = generate(
            &GenConfig {
                rows: 100,
                ..GenConfig::default()
            },
            ZipTarget::City,
        );
        for (_, v) in d.table.iter_column(0) {
            let s = v.as_str().unwrap();
            assert_eq!(s.len(), 5);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn clean_rows_respect_mapping() {
        let d = generate(
            &GenConfig {
                rows: 300,
                seed: 11,
                error_rate: 0.02,
            },
            ZipTarget::City,
        );
        let bad = d.error_rows();
        for row in 0..d.table.row_count() {
            if bad.contains(&row) {
                continue;
            }
            let zip = d.table.cell_str(row, 0).unwrap();
            let (city, state) = city_state_of(zip).unwrap();
            assert_eq!(d.table.cell_str(row, 1), Some(city));
            assert_eq!(d.table.cell_str(row, 2), Some(state));
        }
    }

    #[test]
    fn city_errors_are_shape_breaking() {
        let d = generate(
            &GenConfig {
                rows: 500,
                seed: 13,
                error_rate: 0.02,
            },
            ZipTarget::City,
        );
        assert!(!d.errors.is_empty());
        for e in &d.errors {
            assert_eq!(e.col, 1);
            let c = e.corrupted.as_ref().unwrap();
            assert_ne!(c, &e.original);
        }
    }

    #[test]
    fn state_errors_include_case_flips() {
        let d = generate(
            &GenConfig {
                rows: 800,
                seed: 17,
                error_rate: 0.03,
            },
            ZipTarget::State,
        );
        assert!(d.errors.iter().any(|e| e.kind == CorruptionKind::CaseFlip));
        for e in &d.errors {
            assert_eq!(e.col, 2);
        }
    }
}
