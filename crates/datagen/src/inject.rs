//! The shared error injector.
//!
//! Reproduces the corruption types visible in the paper's Table 3:
//! truncation (`Chicago` → `Chicag`, → `C`), transposition (`Chciago`),
//! case errors (`IL` → `lL`), and wrong constants (`FL` → `CA`,
//! `M` → `F`). Corruption targets and kinds are drawn from a seeded RNG;
//! every change is recorded with its original value as ground truth.

use anmat_table::{RowId, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// The corruption applied to one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Replace with a different value from the column's domain pool.
    WrongValue,
    /// Drop trailing characters (`Chicago` → `Chicag`).
    Truncate,
    /// Swap two adjacent characters (`Chicago` → `Chciago`).
    Transpose,
    /// Flip the case of one letter (`IL` → `lL`).
    CaseFlip,
    /// Blank the cell (disguised missing value).
    Null,
}

/// One recorded corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedError {
    /// Corrupted row.
    pub row: RowId,
    /// Corrupted column index.
    pub col: usize,
    /// The clean value before corruption.
    pub original: String,
    /// The value written.
    pub corrupted: Option<String>,
    /// What was done.
    pub kind: CorruptionKind,
}

/// Applies corruptions to a table column.
#[derive(Debug)]
pub struct ErrorInjector {
    /// Corruption kinds to draw from (uniformly).
    pub kinds: Vec<CorruptionKind>,
    /// Replacement pool for [`CorruptionKind::WrongValue`].
    pub pool: Vec<String>,
}

impl ErrorInjector {
    /// An injector drawing from all corruption kinds.
    #[must_use]
    pub fn all_kinds(pool: Vec<String>) -> ErrorInjector {
        ErrorInjector {
            kinds: vec![
                CorruptionKind::WrongValue,
                CorruptionKind::Truncate,
                CorruptionKind::Transpose,
                CorruptionKind::CaseFlip,
            ],
            pool,
        }
    }

    /// An injector that only swaps in wrong domain values.
    #[must_use]
    pub fn wrong_value_only(pool: Vec<String>) -> ErrorInjector {
        ErrorInjector {
            kinds: vec![CorruptionKind::WrongValue],
            pool,
        }
    }

    /// Corrupt `count` distinct rows of column `col`, returning ground
    /// truth. Rows with null cells are skipped.
    pub fn corrupt(
        &self,
        table: &mut Table,
        col: usize,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<InjectedError> {
        let n = table.row_count();
        if n == 0 || count == 0 || self.kinds.is_empty() {
            return Vec::new();
        }
        let mut targets: Vec<RowId> = Vec::with_capacity(count);
        let mut used = std::collections::HashSet::new();
        let mut attempts = 0;
        while targets.len() < count && attempts < count * 20 + 100 {
            attempts += 1;
            let row = rng.random_range(0..n);
            if used.contains(&row) || table.cell_id(row, col).is_null() {
                continue;
            }
            used.insert(row);
            targets.push(row);
        }
        let mut out = Vec::with_capacity(targets.len());
        for row in targets {
            let original = table
                .cell_str(row, col)
                .expect("nulls filtered above")
                .to_string();
            let kind = self.kinds[rng.random_range(0..self.kinds.len())];
            let corrupted = self.apply(&original, kind, rng);
            // A corruption that happens to reproduce the original (e.g. a
            // transpose of equal chars) is retried as WrongValue, and
            // skipped entirely if even that cannot differ.
            let corrupted = match corrupted {
                Some(c) if c == original => self
                    .apply(&original, CorruptionKind::WrongValue, rng)
                    .filter(|c| c != &original),
                other => other,
            };
            match corrupted {
                Some(c) => {
                    table.set_cell(row, col, Value::text(c.clone()));
                    out.push(InjectedError {
                        row,
                        col,
                        original,
                        corrupted: Some(c),
                        kind,
                    });
                }
                None if kind == CorruptionKind::Null => {
                    table.set_cell(row, col, Value::Null);
                    out.push(InjectedError {
                        row,
                        col,
                        original,
                        corrupted: None,
                        kind,
                    });
                }
                None => {}
            }
        }
        out.sort_by_key(|e| e.row);
        out
    }

    fn apply(&self, original: &str, kind: CorruptionKind, rng: &mut StdRng) -> Option<String> {
        match kind {
            CorruptionKind::WrongValue => {
                let alternatives: Vec<&String> = self
                    .pool
                    .iter()
                    .filter(|v| v.as_str() != original)
                    .collect();
                if alternatives.is_empty() {
                    return None;
                }
                Some(alternatives[rng.random_range(0..alternatives.len())].clone())
            }
            CorruptionKind::Truncate => {
                let chars: Vec<char> = original.chars().collect();
                if chars.len() < 2 {
                    return None;
                }
                // Keep between 1 and len-1 characters.
                let keep = rng.random_range(1..chars.len());
                Some(chars[..keep].iter().collect())
            }
            CorruptionKind::Transpose => {
                let mut chars: Vec<char> = original.chars().collect();
                if chars.len() < 2 {
                    return None;
                }
                let i = rng.random_range(0..chars.len() - 1);
                chars.swap(i, i + 1);
                Some(chars.into_iter().collect())
            }
            CorruptionKind::CaseFlip => {
                let chars: Vec<char> = original.chars().collect();
                let letter_positions: Vec<usize> = chars
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.is_alphabetic())
                    .map(|(i, _)| i)
                    .collect();
                if letter_positions.is_empty() {
                    return None;
                }
                let p = letter_positions[rng.random_range(0..letter_positions.len())];
                let mut chars = chars;
                chars[p] = if chars[p].is_uppercase() {
                    chars[p].to_lowercase().next().unwrap_or(chars[p])
                } else {
                    chars[p].to_uppercase().next().unwrap_or(chars[p])
                };
                Some(chars.into_iter().collect())
            }
            CorruptionKind::Null => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;
    use rand::SeedableRng;

    fn table(n: usize) -> Table {
        let schema = Schema::new(["city"]).unwrap();
        let rows: Vec<Vec<Value>> = (0..n).map(|_| vec![Value::text("Chicago")]).collect();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn corrupts_exactly_count_rows() {
        let mut t = table(100);
        let inj = ErrorInjector::all_kinds(vec!["Springfield".into()]);
        let mut rng = StdRng::seed_from_u64(7);
        let errors = inj.corrupt(&mut t, 0, 5, &mut rng);
        assert_eq!(errors.len(), 5);
        for e in &errors {
            assert_eq!(e.original, "Chicago");
            let now = t.cell_str(e.row, 0).map(str::to_string);
            assert_eq!(now, e.corrupted);
            assert_ne!(now.as_deref(), Some("Chicago"));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let inj = ErrorInjector::all_kinds(vec!["X".into()]);
        let mut t1 = table(50);
        let mut t2 = table(50);
        let e1 = inj.corrupt(&mut t1, 0, 5, &mut StdRng::seed_from_u64(42));
        let e2 = inj.corrupt(&mut t2, 0, 5, &mut StdRng::seed_from_u64(42));
        assert_eq!(e1, e2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn truncate_produces_prefix() {
        let inj = ErrorInjector {
            kinds: vec![CorruptionKind::Truncate],
            pool: vec![],
        };
        let mut t = table(10);
        let mut rng = StdRng::seed_from_u64(1);
        let errors = inj.corrupt(&mut t, 0, 3, &mut rng);
        for e in &errors {
            let c = e.corrupted.as_ref().unwrap();
            assert!(e.original.starts_with(c.as_str()));
            assert!(c.len() < e.original.len());
        }
    }

    #[test]
    fn transpose_is_permutation() {
        let inj = ErrorInjector {
            kinds: vec![CorruptionKind::Transpose],
            pool: vec!["Zzz".into()],
        };
        let mut t = table(10);
        let mut rng = StdRng::seed_from_u64(3);
        let errors = inj.corrupt(&mut t, 0, 3, &mut rng);
        for e in &errors {
            if e.kind != CorruptionKind::Transpose {
                continue;
            }
            if let Some(c) = &e.corrupted {
                if c == "Zzz" {
                    continue; // fell back to WrongValue on a no-op swap
                }
                let mut a: Vec<char> = e.original.chars().collect();
                let mut b: Vec<char> = c.chars().collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{} vs {}", e.original, c);
            }
        }
    }

    #[test]
    fn case_flip_changes_one_letter_case() {
        let inj = ErrorInjector {
            kinds: vec![CorruptionKind::CaseFlip],
            pool: vec![],
        };
        let schema = Schema::new(["state"]).unwrap();
        let mut t = Table::from_str_rows(schema, [["IL"], ["IL"], ["IL"]]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let errors = inj.corrupt(&mut t, 0, 2, &mut rng);
        for e in &errors {
            let c = e.corrupted.as_ref().unwrap();
            assert!(c == "iL" || c == "Il", "{c}");
        }
    }

    #[test]
    fn wrong_value_requires_pool() {
        let inj = ErrorInjector::wrong_value_only(vec![]);
        let mut t = table(10);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(inj.corrupt(&mut t, 0, 3, &mut rng).is_empty());
    }
}
