//! Phone → State (Table 3, block D1).
//!
//! NANP numbers rendered as 10 digits (`8505467600`, as in the paper's
//! error listing); the 3-digit area-code prefix determines the state.
//! Injected errors replace the state with another state — exactly the
//! paper's error rows (`8505467600 | CA`, `6073771300 | PA` …).

use crate::{Dataset, ErrorInjector, GenConfig};
use anmat_table::{Schema, Table, Value};
use rand::Rng;

/// Area code → state, starting with the paper's five.
pub const AREA_CODES: &[(&str, &str)] = &[
    ("850", "FL"), // Tallahassee — paper row 1
    ("607", "NY"), // Ithaca — paper row 2
    ("404", "GA"), // Atlanta — paper row 3
    ("217", "IL"), // Springfield — paper row 4
    ("860", "CT"), // Hartford — paper row 5
    ("212", "NY"),
    ("312", "IL"),
    ("305", "FL"),
    ("512", "TX"),
    ("206", "WA"),
];

/// States used as wrong-value replacements (the paper's error column shows
/// CA, PA, OK, TX, SC).
pub const WRONG_STATES: &[&str] = &["CA", "PA", "OK", "TX", "SC", "MI", "NV"];

/// Generate the D1-style phone/state dataset.
#[must_use]
pub fn generate(config: &GenConfig) -> Dataset {
    let mut rng = config.rng();
    let schema = Schema::new(["phone", "state"]).expect("static names");
    let mut table = Table::empty(schema);
    for _ in 0..config.rows {
        let (area, state) = AREA_CODES[rng.random_range(0..AREA_CODES.len())];
        let line: u32 = rng.random_range(0..10_000_000);
        let phone = format!("{area}{line:07}");
        table
            .push_row(vec![Value::text(phone), Value::text(state)])
            .expect("arity 2");
    }
    let injector =
        ErrorInjector::wrong_value_only(WRONG_STATES.iter().map(|s| (*s).to_string()).collect());
    let errors = injector.corrupt(&mut table, 1, config.error_count(), &mut rng);
    Dataset { table, errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = GenConfig {
            rows: 200,
            seed: 1,
            error_rate: 0.05,
        };
        let d1 = generate(&cfg);
        let d2 = generate(&cfg);
        assert_eq!(d1.table, d2.table);
        assert_eq!(d1.table.row_count(), 200);
        assert_eq!(d1.errors.len(), 10);
    }

    #[test]
    fn phones_are_ten_digits_with_known_area() {
        let d = generate(&GenConfig {
            rows: 50,
            ..GenConfig::default()
        });
        for (_, v) in d.table.iter_column(0) {
            let s = v.as_str().unwrap();
            assert_eq!(s.len(), 10);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
            assert!(AREA_CODES.iter().any(|(a, _)| s.starts_with(a)));
        }
    }

    #[test]
    fn clean_rows_respect_dependency() {
        let d = generate(&GenConfig {
            rows: 300,
            seed: 9,
            error_rate: 0.02,
        });
        let bad = d.error_rows();
        for (row, phone, state) in d.table.iter_pair(0, 1) {
            if bad.contains(&row) {
                continue;
            }
            let area = &phone[..3];
            let expected = AREA_CODES
                .iter()
                .find(|(a, _)| a == &area)
                .map(|(_, s)| *s)
                .unwrap();
            assert_eq!(state, expected, "row {row}");
        }
    }

    #[test]
    fn errors_change_state_only() {
        let d = generate(&GenConfig {
            rows: 300,
            seed: 5,
            error_rate: 0.03,
        });
        for e in &d.errors {
            assert_eq!(e.col, 1);
            assert_ne!(e.corrupted.as_deref(), Some(e.original.as_str()));
        }
    }
}
