//! Memoization guarantee: a matcher invoked over a column performs at
//! most `distinct(column)` pattern evaluations per tableau pattern,
//! regardless of row count — asserted via the engine's call-counting
//! hooks ([`StreamEngine::pattern_evals`], `MatchMemo::evals`,
//! `BlockingPartition::key_evals`).

use anmat_core::{PatternTuple, Pfd};
use anmat_pattern::ConstrainedPattern;
use anmat_stream::StreamEngine;
use anmat_table::Schema;

fn schema() -> Schema {
    Schema::new(["zip", "city"]).unwrap()
}

fn constant_rule() -> Pfd {
    Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::constant(
            ConstrainedPattern::unconstrained("900\\D{2}".parse().unwrap()),
            "Los Angeles",
        )],
    )
}

fn variable_rule() -> Pfd {
    Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
        )],
    )
}

/// 10 000 rows over `DISTINCT` distinct zips: the constant tuple's
/// pattern must be evaluated exactly `DISTINCT` times, not 10 000.
#[test]
fn constant_pattern_evaluated_once_per_distinct_value() {
    const ROWS: usize = 10_000;
    const DISTINCT: usize = 37;
    let mut engine = StreamEngine::new(schema(), vec![constant_rule()]);
    for row in 0..ROWS {
        let zip = format!("90{:03}", row % DISTINCT);
        engine.push_str_row([zip.as_str(), "Los Angeles"]).unwrap();
    }
    assert_eq!(
        engine.pattern_evals(),
        DISTINCT,
        "constant-tuple matching must be memoized per distinct LHS value"
    );
}

/// Same bound for variable tuples: capture extraction (the pattern-
/// matching cost of blocking) runs once per distinct LHS value.
#[test]
fn variable_capture_extracted_once_per_distinct_value() {
    const ROWS: usize = 10_000;
    const DISTINCT: usize = 23;
    let mut engine = StreamEngine::new(schema(), vec![variable_rule()]);
    for row in 0..ROWS {
        let zip = format!("90{:03}", row % DISTINCT);
        engine.push_str_row([zip.as_str(), "Los Angeles"]).unwrap();
    }
    assert_eq!(
        engine.pattern_evals(),
        DISTINCT,
        "blocking-key extraction must be memoized per distinct LHS value"
    );
}

/// Mixed rule set: the bound is per (pattern, distinct value), summed
/// over tuples — never per row. Null LHS cells cost no evaluation.
#[test]
fn mixed_rules_bounded_by_distinct_times_tuples() {
    const ROWS: usize = 5_000;
    const DISTINCT: usize = 11;
    let mut engine = StreamEngine::new(schema(), vec![constant_rule(), variable_rule()]);
    for row in 0..ROWS {
        if row % 100 == 0 {
            engine.push_str_row(["", "Los Angeles"]).unwrap(); // null LHS
            continue;
        }
        let zip = format!("90{:03}", row % DISTINCT);
        engine.push_str_row([zip.as_str(), "Los Angeles"]).unwrap();
    }
    assert_eq!(
        engine.pattern_evals(),
        2 * DISTINCT,
        "two patterns over {DISTINCT} distinct values"
    );
}
