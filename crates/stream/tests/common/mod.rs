//! Helpers shared between the stream crate's integration-test binaries.

/// Local proptest case count, overridable by `PROPTEST_CASES` (the CI
/// shard-equivalence and churn-compaction steps elevate it); in-repo
/// defaults stay small because each case runs discovery plus several
/// full engines.
pub fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
