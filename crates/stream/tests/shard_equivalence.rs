//! Shard-equivalence — the determinism contract of the sharded engine:
//! for every datagen dataset and random op interleavings, a
//! [`ShardedEngine`] must produce the **same event stream, batch by
//! batch** (contents *and* order), the same final ledger state, the
//! same per-rule health, the same drift report, and the same pattern
//! eval/lookup counters as the single-threaded [`StreamEngine`] —
//! bit-for-bit, regardless of the sharding axis (rule- or
//! key-granular), shard count, run-ahead pipelining window, shard
//! completion order, batch splits, or mid-stream rebalancing.
//!
//! Case count scales with `PROPTEST_CASES` (CI runs a dedicated
//! elevated-cases step so the concurrency path gets real coverage on
//! every push).

use anmat_core::{discover, DiscoveryConfig, Pfd};
use anmat_datagen::{chembl, employee, names, phone, zipcity, GenConfig};
use anmat_pattern::PatternEngine;
use anmat_stream::{BatchEvents, ShardBy, ShardedEngine, StreamConfig, StreamEngine};
use anmat_table::{RowId, RowOp, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::cases;

fn discovery_config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.15,
        ..DiscoveryConfig::default()
    }
}

/// A random interleaving: every source row arrives as an insert; after
/// each arrival, with probability `churn` (repeatedly), a random live
/// slot is deleted or updated in place (same generator as
/// `tests/mutations.rs`).
fn random_ops(source: &Table, seed: u64, churn: f64) -> Vec<RowOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut live: Vec<RowId> = Vec::new();
    for r in 0..source.row_count() {
        ops.push(RowOp::Insert(source.row(r)));
        live.push(r);
        while !live.is_empty() && rng.random_bool(churn) {
            let pick = rng.random_range(0..live.len());
            let row = live[pick];
            if rng.random_bool(0.5) {
                live.remove(pick);
                ops.push(RowOp::Delete(row));
            } else {
                let donor = rng.random_range(0..source.row_count());
                ops.push(RowOp::Update(row, source.row(donor)));
            }
        }
    }
    ops
}

/// Split `ops` into batches whose sizes cycle through `batch_sizes`, so
/// the sharded fan-out is exercised at several batch granularities in
/// one run.
fn batches(ops: &[RowOp], batch_sizes: &[usize]) -> Vec<Vec<RowOp>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut size_idx = 0usize;
    while i < ops.len() {
        let size = batch_sizes[size_idx % batch_sizes.len()].max(1);
        size_idx += 1;
        let end = (i + size).min(ops.len());
        out.push(ops[i..end].to_vec());
        i = end;
    }
    out
}

/// How compaction epochs interleave with the batch stream: forced
/// barriers after given batch indices, and/or the engines' own
/// `compact_ratio` trigger. Ops must then be generated epoch-aware
/// ([`epoch_aware_batches`]), since compaction renumbers row ids.
#[derive(Default, Clone)]
struct CompactionPlan {
    /// Run a coordinated `compact()` on every engine after this batch.
    force_after: Option<usize>,
    /// `StreamConfig::compact_ratio` for every engine (0.0 = off).
    ratio: f64,
    /// Expected engine epoch after each batch (from
    /// [`epoch_aware_batches`]'s simulation) — pins the test's id-space
    /// bookkeeping to what the engines actually did.
    expected_epochs: Vec<u64>,
}

/// One sharded configuration under test: the sharding axis, worker
/// count, and pipelining window. The determinism contract quantifies
/// over all three.
#[derive(Clone, Copy)]
struct ShardSpec {
    shard_by: ShardBy,
    shards: usize,
    run_ahead: usize,
}

impl ShardSpec {
    const fn rule(shards: usize) -> Self {
        Self {
            shard_by: ShardBy::Rule,
            shards,
            run_ahead: 0,
        }
    }

    const fn key(shards: usize, run_ahead: usize) -> Self {
        Self {
            shard_by: ShardBy::Key,
            shards,
            run_ahead,
        }
    }

    const fn pipelined(self, run_ahead: usize) -> Self {
        Self {
            shard_by: self.shard_by,
            shards: self.shards,
            run_ahead,
        }
    }

    fn label(&self) -> String {
        format!(
            "{:?}×{} run-ahead {}",
            self.shard_by, self.shards, self.run_ahead
        )
    }
}

/// The classic matrix the original suite ran: rule-granular sharding,
/// 1/2/4 workers, no pipelining.
const RULE_SPECS: [ShardSpec; 3] = [ShardSpec::rule(1), ShardSpec::rule(2), ShardSpec::rule(4)];

/// The single-threaded reference run: per-batch event streams plus the
/// engine itself, kept for final-state comparisons.
fn reference_run(
    schema: &anmat_table::Schema,
    rules: &[Pfd],
    op_batches: &[Vec<RowOp>],
    config: StreamConfig,
    compaction: &CompactionPlan,
    context: &str,
) -> (StreamEngine, Vec<Vec<anmat_stream::LedgerEvent>>) {
    let mut single = StreamEngine::with_config(schema.clone(), rules.to_vec(), config);
    let reference: Vec<Vec<_>> = op_batches
        .iter()
        .enumerate()
        .map(|(k, batch)| {
            let events = single.apply(batch.clone()).expect("ops are valid");
            if compaction.force_after == Some(k) {
                single.compact();
            }
            if let Some(&expected) = compaction.expected_epochs.get(k) {
                assert_eq!(
                    single.epoch(),
                    expected,
                    "the test's epoch simulation diverged from the engine on {context} (batch {k})"
                );
            }
            events
        })
        .collect();
    (single, reference)
}

/// Run one sharded configuration over the batch stream and assert the
/// full determinism contract against the reference. `run_ahead == 0`
/// exercises the blocking `apply` path (per-batch comparison inline);
/// `run_ahead > 0` exercises the pipelined `submit`/`flush` path, where
/// completed batches surface later — sequence tags must still come back
/// in submission order with bit-identical per-batch event streams.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn check_spec(
    schema: &anmat_table::Schema,
    rules: &[Pfd],
    op_batches: &[Vec<RowOp>],
    rebalance_at: Option<usize>,
    compaction: &CompactionPlan,
    base: StreamConfig,
    single: &StreamEngine,
    reference: &[Vec<anmat_stream::LedgerEvent>],
    spec: ShardSpec,
    context: &str,
) {
    let label = spec.label();
    let config = StreamConfig {
        shard_by: spec.shard_by,
        shards: spec.shards,
        run_ahead: spec.run_ahead,
        ..base
    };
    let mut sharded = ShardedEngine::with_config(schema.clone(), rules.to_vec(), config);
    assert_eq!(sharded.shard_by(), spec.shard_by);
    assert_eq!(sharded.run_ahead(), spec.run_ahead);
    let mut completed: Vec<BatchEvents> = Vec::new();
    for (k, batch) in op_batches.iter().enumerate() {
        if rebalance_at == Some(k) {
            sharded.rebalance();
        }
        if spec.run_ahead == 0 {
            let events = sharded.apply(batch.clone()).expect("ops are valid");
            assert_eq!(
                events, reference[k],
                "event stream diverged on {context} ({label}, batch {k})"
            );
        } else {
            completed.extend(sharded.submit(batch.clone()).expect("ops are valid"));
        }
        if compaction.force_after == Some(k) {
            let evals_before = sharded.pattern_evals();
            sharded.compact();
            assert_eq!(
                sharded.pattern_evals(),
                evals_before,
                "the epoch barrier must not move pattern_evals on {context} ({label})"
            );
        }
    }
    if spec.run_ahead > 0 {
        completed.extend(sharded.flush());
        assert_eq!(
            completed.len(),
            op_batches.len(),
            "every submitted batch must surface exactly once on {context} ({label})"
        );
        for (k, batch_events) in completed.iter().enumerate() {
            assert_eq!(
                batch_events.seq as usize, k,
                "pipelined batches must complete in submission order on {context} ({label})"
            );
            assert_eq!(
                batch_events.events, reference[k],
                "pipelined event stream diverged on {context} ({label}, batch {k})"
            );
        }
        assert_eq!(
            sharded.pipeline_depth(),
            0,
            "flush must leave the pipeline empty on {context} ({label})"
        );
    }
    assert_eq!(
        sharded.epoch(),
        single.epoch(),
        "compaction epochs diverged on {context} ({label})"
    );
    assert_eq!(
        sharded.compaction_stats(),
        single.compaction_stats(),
        "compaction stats diverged on {context} ({label})"
    );
    assert_eq!(
        sharded.ledger().snapshot(),
        single.ledger().snapshot(),
        "ledger state diverged on {context} ({label})"
    );
    assert_eq!(sharded.ledger().live_count(), single.ledger().live_count());
    assert_eq!(
        sharded.ledger().created_total(),
        single.ledger().created_total(),
        "created totals diverged on {context} ({label})"
    );
    assert_eq!(
        sharded.ledger().retracted_total(),
        single.ledger().retracted_total(),
        "retracted totals diverged on {context} ({label})"
    );
    assert_eq!(
        sharded.table(),
        single.table(),
        "canonical table diverged on {context} ({label})"
    );
    for rule in 0..rules.len() {
        assert_eq!(
            sharded.rule_health(rule),
            single.rule_health(rule),
            "rule {rule} health diverged on {context} ({label})"
        );
    }
    assert_eq!(
        sharded.drift_report(),
        single.drift_report(),
        "drift report diverged on {context} ({label})"
    );
    assert_eq!(
        sharded.pattern_evals(),
        single.pattern_evals(),
        "pattern eval counts diverged on {context} ({label})"
    );
    assert_eq!(
        sharded.pattern_lookups(),
        single.pattern_lookups(),
        "pattern lookup counts diverged on {context} ({label})"
    );
}

/// Feed identical batch sequences to the single-threaded engine and to
/// every sharded configuration in `specs` (optionally rebalancing or
/// compacting mid-stream), asserting the full determinism contract.
fn assert_specs_equivalent(
    schema: &anmat_table::Schema,
    rules: &[Pfd],
    op_batches: &[Vec<RowOp>],
    rebalance_at: Option<usize>,
    compaction: &CompactionPlan,
    specs: &[ShardSpec],
    context: &str,
) {
    let config = StreamConfig {
        compact_ratio: compaction.ratio,
        ..StreamConfig::default()
    };
    let (single, reference) = reference_run(schema, rules, op_batches, config, compaction, context);
    for &spec in specs {
        check_spec(
            schema,
            rules,
            op_batches,
            rebalance_at,
            compaction,
            config,
            &single,
            &reference,
            spec,
            context,
        );
    }
}

/// The original suite's entry point: rule-granular sharding at 1/2/4
/// workers, no pipelining.
fn assert_shard_equivalent(
    schema: &anmat_table::Schema,
    rules: &[Pfd],
    op_batches: &[Vec<RowOp>],
    rebalance_at: Option<usize>,
    compaction: &CompactionPlan,
    context: &str,
) {
    assert_specs_equivalent(
        schema,
        rules,
        op_batches,
        rebalance_at,
        compaction,
        &RULE_SPECS,
        context,
    );
}

/// Like [`random_ops`] + [`batches`], but epoch-aware: the op stream is
/// generated against the id space the engines will actually hold,
/// replicating the compaction plan (forced barriers after given
/// batches, and the `compact_ratio` trigger — which both engines check
/// at batch boundaries only). Returns the batches plus the expected
/// epoch after each batch, so the harness can cross-check its
/// simulation against the engines.
fn epoch_aware_batches(
    source: &Table,
    seed: u64,
    churn: f64,
    batch_sizes: &[usize],
    plan: CompactionPlan,
) -> (Vec<Vec<RowOp>>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batches = Vec::new();
    let mut epochs = Vec::new();
    let mut live: Vec<RowId> = Vec::new();
    let mut slots = 0usize;
    let mut epoch = 0u64;
    let mut next = 0usize;
    let mut size_idx = 0usize;
    while next < source.row_count() {
        let size = batch_sizes[size_idx % batch_sizes.len()].max(1);
        size_idx += 1;
        let mut ops = Vec::new();
        for _ in 0..size.min(source.row_count() - next) {
            ops.push(RowOp::Insert(source.row(next)));
            next += 1;
            live.push(slots);
            slots += 1;
            while !live.is_empty() && rng.random_bool(churn) {
                let pick = rng.random_range(0..live.len());
                let row = live[pick];
                if rng.random_bool(0.5) {
                    live.remove(pick);
                    ops.push(RowOp::Delete(row));
                } else {
                    let donor = rng.random_range(0..source.row_count());
                    ops.push(RowOp::Update(row, source.row(donor)));
                }
            }
        }
        let k = batches.len();
        batches.push(ops);
        // Policy replica: the ratio trigger fires at the batch
        // boundary; a forced barrier runs right after it (both can fire
        // on one batch — two epochs, the second an identity pass).
        let dead = slots - live.len();
        if plan.ratio > 0.0 && dead > 0 && dead as f64 >= plan.ratio * slots as f64 {
            epoch += 1;
            live.sort_unstable();
            slots = live.len();
            live = (0..slots).collect();
        }
        if plan.force_after == Some(k) {
            epoch += 1;
            live.sort_unstable();
            slots = live.len();
            live = (0..slots).collect();
        }
        epochs.push(epoch);
    }
    (batches, epochs)
}

fn check_dataset(table: &Table, seed: u64, churn: f64, context: &str) {
    let rules = discover(table, &discovery_config());
    let ops = random_ops(table, seed, churn);
    let op_batches = batches(&ops, &[1, 7, 64, 3]);
    assert_shard_equivalent(
        table.schema(),
        &rules,
        &op_batches,
        None,
        &CompactionPlan::default(),
        context,
    );
}

/// The sharded half of the compaction acceptance criterion: with a
/// coordinated epoch barrier mid-stream — forced, or triggered by
/// `compact_ratio` — 1/2/4 shards stay bit-for-bit identical to the
/// single-threaded engine, epochs and reclaimed-slot counts included.
fn check_dataset_with_compaction(table: &Table, seed: u64, churn: f64, context: &str) {
    let rules = discover(table, &discovery_config());
    // Forced barrier roughly mid-stream.
    let probe = epoch_aware_batches(table, seed, churn, &[5, 17, 2], CompactionPlan::default());
    let mid = probe.0.len() / 2;
    let mut plan = CompactionPlan {
        force_after: Some(mid),
        ratio: 0.0,
        expected_epochs: Vec::new(),
    };
    let (op_batches, epochs) = epoch_aware_batches(table, seed, churn, &[5, 17, 2], plan.clone());
    plan.expected_epochs = epochs;
    assert_shard_equivalent(
        table.schema(),
        &rules,
        &op_batches,
        None,
        &plan,
        &format!("{context} + forced epoch barrier"),
    );
    // The engines' own ratio trigger (the acceptance ratio, 0.3).
    let mut plan = CompactionPlan {
        force_after: None,
        ratio: 0.3,
        expected_epochs: Vec::new(),
    };
    let (op_batches, epochs) =
        epoch_aware_batches(table, seed ^ 0xE90C, churn, &[9, 3, 33], plan.clone());
    plan.expected_epochs = epochs;
    assert_shard_equivalent(
        table.schema(),
        &rules,
        &op_batches,
        None,
        &plan,
        &format!("{context} + ratio 0.3 epochs"),
    );
}

#[test]
fn every_datagen_dataset_is_shard_equivalent() {
    let config = GenConfig {
        rows: 180,
        seed: 0x5AAD,
        error_rate: 0.04,
    };
    check_dataset(&phone::generate(&config).table, 1, 0.15, "phone");
    check_dataset(&names::generate(&config).table, 2, 0.15, "names");
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::City).table,
        3,
        0.15,
        "zipcity/City",
    );
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::State).table,
        4,
        0.15,
        "zipcity/State",
    );
    check_dataset(&employee::generate(&config).table, 5, 0.15, "employee");
    check_dataset(&chembl::generate(&config).table, 6, 0.15, "chembl");
}

#[test]
fn replay_table_is_shard_equivalent() {
    let config = GenConfig {
        rows: 300,
        seed: 0xBEE5,
        error_rate: 0.03,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    let rules = discover(&data.table, &discovery_config());
    let mut single = StreamEngine::new(data.table.schema().clone(), rules.clone());
    let reference = single.replay_table(&data.table).expect("schema matches");
    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedEngine::new(data.table.schema().clone(), rules.clone(), shards);
        let events = sharded.replay_table(&data.table).expect("schema matches");
        assert_eq!(
            events, reference,
            "replay events diverged (shards={shards})"
        );
        assert_eq!(sharded.ledger().snapshot(), single.ledger().snapshot());
        assert_eq!(sharded.pattern_evals(), single.pattern_evals());
    }
}

#[test]
fn rebalancing_mid_stream_changes_nothing_observable() {
    let config = GenConfig {
        rows: 200,
        seed: 0x12EBA,
        error_rate: 0.05,
    };
    let data = names::generate(&config);
    let rules = discover(&data.table, &discovery_config());
    let ops = random_ops(&data.table, 7, 0.2);
    let op_batches = batches(&ops, &[16]);
    // Rebalance after roughly half the batches have flowed.
    let mid = op_batches.len() / 2;
    assert_shard_equivalent(
        data.table.schema(),
        &rules,
        &op_batches,
        Some(mid),
        &CompactionPlan::default(),
        "names + mid-stream rebalance",
    );
}

#[test]
fn mid_stream_compaction_is_shard_equivalent() {
    let config = GenConfig {
        rows: 200,
        seed: 0xE90C4,
        error_rate: 0.05,
    };
    check_dataset_with_compaction(
        &zipcity::generate(&config, zipcity::ZipTarget::City).table,
        21,
        0.3,
        "zipcity",
    );
    check_dataset_with_compaction(&names::generate(&config).table, 22, 0.3, "names");
}

#[test]
fn compaction_composes_with_mid_stream_rebalance() {
    // The two coordinated maneuvers — rule-state migration and the
    // epoch barrier — in one run, rebalance first, barrier later.
    let config = GenConfig {
        rows: 160,
        seed: 0xBA1A,
        error_rate: 0.05,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    let rules = discover(&data.table, &discovery_config());
    let probe = epoch_aware_batches(&data.table, 31, 0.3, &[12], CompactionPlan::default());
    let barrier = (2 * probe.0.len()) / 3;
    let mut plan = CompactionPlan {
        force_after: Some(barrier),
        ratio: 0.0,
        expected_epochs: Vec::new(),
    };
    let (op_batches, epochs) = epoch_aware_batches(&data.table, 31, 0.3, &[12], plan.clone());
    plan.expected_epochs = epochs;
    assert_shard_equivalent(
        data.table.schema(),
        &rules,
        &op_batches,
        Some(op_batches.len() / 3),
        &plan,
        "zipcity + rebalance then epoch barrier",
    );
}

/// The tentpole matrix: key-granular sharding (blocking keys hashed
/// over workers) crossed with the run-ahead pipelining window. Every
/// cell must be bit-for-bit indistinguishable from the single-threaded
/// engine — per-batch events (in submission order under pipelining),
/// ledger, health, drift, and the eval/lookup counters (the
/// coordinator's route derivation plus worker-side evals must add up
/// to exactly the single-threaded counts).
#[test]
fn key_sharding_and_pipelining_matrix_is_equivalent() {
    let config = GenConfig {
        rows: 180,
        seed: 0x4E15,
        error_rate: 0.05,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    let rules = discover(&data.table, &discovery_config());
    let ops = random_ops(&data.table, 61, 0.2);
    let op_batches = batches(&ops, &[1, 13, 48, 5]);
    let mut specs = Vec::new();
    for shards in [1usize, 2, 4] {
        for run_ahead in [0usize, 1, 4] {
            specs.push(ShardSpec::key(shards, run_ahead));
        }
    }
    // Pipelining composes with the rule axis too.
    specs.push(ShardSpec::rule(2).pipelined(4));
    specs.push(ShardSpec::rule(4).pipelined(1));
    assert_specs_equivalent(
        data.table.schema(),
        &rules,
        &op_batches,
        None,
        &CompactionPlan::default(),
        &specs,
        "zipcity (key/pipeline matrix)",
    );
}

/// A single heavy variable rule — the workload rule-granular sharding
/// cannot spread (its clamp collapses to one worker). Key mode must
/// keep all four workers *and* stay bit-for-bit equivalent, pipelined
/// or not.
#[test]
fn single_heavy_rule_is_key_shard_equivalent() {
    use anmat_core::PatternTuple;

    let config = GenConfig {
        rows: 240,
        seed: 0x1EAF,
        error_rate: 0.05,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    let rule = Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable("[\\D{3}]\\D{2}".parse().unwrap())],
    );
    let ops = random_ops(&data.table, 71, 0.25);
    let op_batches = batches(&ops, &[9, 31, 2]);
    assert_specs_equivalent(
        data.table.schema(),
        &[rule],
        &op_batches,
        None,
        &CompactionPlan::default(),
        &[ShardSpec::key(4, 0), ShardSpec::key(4, 4)],
        "zipcity single heavy rule",
    );
}

/// The coordinated maneuvers under the key axis: a mid-stream
/// `rebalance()` (slot census → key-range migration) followed later by
/// a forced compaction epoch barrier, with pipelining both off and on.
#[test]
fn key_mode_rebalance_and_epoch_barrier_are_equivalent() {
    let config = GenConfig {
        rows: 160,
        seed: 0x5107,
        error_rate: 0.05,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    let rules = discover(&data.table, &discovery_config());
    let probe = epoch_aware_batches(&data.table, 81, 0.3, &[11], CompactionPlan::default());
    let barrier = (2 * probe.0.len()) / 3;
    let mut plan = CompactionPlan {
        force_after: Some(barrier),
        ratio: 0.0,
        expected_epochs: Vec::new(),
    };
    let (op_batches, epochs) = epoch_aware_batches(&data.table, 81, 0.3, &[11], plan.clone());
    plan.expected_epochs = epochs;
    assert_specs_equivalent(
        data.table.schema(),
        &rules,
        &op_batches,
        Some(op_batches.len() / 3),
        &plan,
        &[
            ShardSpec::key(2, 0),
            ShardSpec::key(4, 1),
            ShardSpec::key(4, 4),
        ],
        "zipcity + key-mode rebalance then epoch barrier",
    );
}

/// Ratio-triggered compaction epochs under key-granular pipelined
/// sharding: the auto-compaction check runs against the coordinator's
/// canonical table at submit time, so the trigger fires at the same
/// batch boundary as the single-threaded engine even while workers run
/// ahead.
#[test]
fn key_mode_ratio_epochs_are_equivalent() {
    let config = GenConfig {
        rows: 150,
        seed: 0xA4C2,
        error_rate: 0.05,
    };
    let data = names::generate(&config);
    let rules = discover(&data.table, &discovery_config());
    let mut plan = CompactionPlan {
        force_after: None,
        ratio: 0.3,
        expected_epochs: Vec::new(),
    };
    let (op_batches, epochs) = epoch_aware_batches(&data.table, 91, 0.35, &[7, 23], plan.clone());
    plan.expected_epochs = epochs;
    assert_specs_equivalent(
        data.table.schema(),
        &rules,
        &op_batches,
        None,
        &plan,
        &[ShardSpec::key(2, 4), ShardSpec::key(4, 0)],
        "names + key-mode ratio epochs",
    );
}

#[test]
fn drift_report_is_rule_index_sorted_across_engines() {
    use anmat_core::PatternTuple;
    use anmat_table::{Schema, Value};

    // Three constant rules that all drift (every matching row violates),
    // seeded so different shards own different rules — the report must
    // come back [0, 1, 2] regardless of which shard judged which rule.
    let schema = Schema::new(["zip", "city"]).unwrap();
    let rule = |expected: &str| {
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::constant(
                anmat_pattern_unconstrained("900\\D{2}"),
                expected,
            )],
        )
    };
    let rules = vec![rule("Alpha"), rule("Beta"), rule("Gamma")];
    let rows: Vec<Vec<Value>> = (0..12)
        .map(|i| vec![Value::text(format!("900{i:02}")), Value::text("Delta")])
        .collect();

    let mut single = StreamEngine::new(schema.clone(), rules.clone());
    single.push_batch(rows.clone()).unwrap();
    let single_report = single.drift_report();
    assert_eq!(
        single_report.iter().map(|d| d.rule).collect::<Vec<_>>(),
        vec![0, 1, 2],
        "single-threaded drift report must be rule-index sorted"
    );

    for shards in [2usize, 3] {
        let mut sharded = ShardedEngine::new(schema.clone(), rules.clone(), shards);
        sharded.push_batch(rows.clone()).unwrap();
        let report = sharded.drift_report();
        assert_eq!(
            report.iter().map(|d| d.rule).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "sharded drift report must be rule-index sorted (shards={shards})"
        );
        assert_eq!(report, single_report);
    }
}

/// Helper: an unconstrained pattern wrapped the way rule constructors
/// expect (kept out of line to keep the test body readable).
fn anmat_pattern_unconstrained(p: &str) -> anmat_pattern::ConstrainedPattern {
    anmat_pattern::ConstrainedPattern::unconstrained(p.parse().unwrap())
}

#[test]
fn instrumented_run_is_bit_for_bit_identical() {
    // The observability contract: turning the metrics recorder on must
    // not perturb anything observable — event streams, ledger, health,
    // drift — in either engine flavour. (The recorder flag is process
    // global; flipping it here is harmless to concurrently running
    // tests precisely *because* of this contract.)
    use anmat_obs as obs;

    let config = GenConfig {
        rows: 160,
        seed: 0xB0B5,
        error_rate: 0.05,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    let rules = discover(&data.table, &discovery_config());
    let ops = random_ops(&data.table, 41, 0.25);
    let op_batches = batches(&ops, &[1, 9, 32]);

    let run = || {
        let mut single = StreamEngine::new(data.table.schema().clone(), rules.clone());
        let mut sharded = ShardedEngine::new(data.table.schema().clone(), rules.clone(), 2);
        let events: Vec<_> = op_batches
            .iter()
            .map(|batch| {
                let a = single.apply(batch.clone()).expect("ops are valid");
                let b = sharded.apply(batch.clone()).expect("ops are valid");
                (a, b)
            })
            .collect();
        // Exercise the publish path too — reading gauges out of engine
        // state must be as inert as the inline counters.
        single.publish_metrics();
        sharded.publish_metrics();
        let healths: Vec<_> = (0..rules.len())
            .map(|r| (single.rule_health(r), sharded.rule_health(r)))
            .collect();
        (
            events,
            single.ledger().snapshot(),
            sharded.ledger().snapshot(),
            healths,
            single.drift_report(),
            sharded.drift_report(),
        )
    };

    let baseline = run();
    obs::Recorder::enable();
    let instrumented = run();
    obs::Recorder::disable();
    assert_eq!(
        baseline, instrumented,
        "an active recorder must not change any observable engine state"
    );
    // And the recorder really was live during the second run: the
    // engine-phase counters can only have moved while it was enabled.
    let snap = obs::MetricsSnapshot::capture();
    assert!(
        snap.counter("engine.ops").unwrap_or(0) > 0,
        "instrumented run must have recorded engine.ops"
    );
}

#[test]
fn every_pattern_engine_is_bit_for_bit_identical() {
    // The tiered-execution contract: `pattern_engine` changes only the
    // machinery memo misses evaluate on (fused matcher vs bytecode VM
    // vs AST interpreter), never anything observable — event streams,
    // ledger, health, drift — and not even the eval/lookup counters,
    // because batch priming is count-neutral by construction.
    let config = GenConfig {
        rows: 180,
        seed: 0xC0DE,
        error_rate: 0.05,
    };
    for (table, context) in [
        (
            zipcity::generate(&config, zipcity::ZipTarget::City).table,
            "zipcity",
        ),
        (names::generate(&config).table, "names"),
    ] {
        let rules = discover(&table, &discovery_config());
        let ops = random_ops(&table, 51, 0.2);
        let op_batches = batches(&ops, &[1, 11, 40]);
        let engine_for = |pattern_engine| {
            StreamEngine::with_config(
                table.schema().clone(),
                rules.clone(),
                StreamConfig {
                    pattern_engine,
                    ..StreamConfig::default()
                },
            )
        };
        let mut fused = engine_for(PatternEngine::Fused);
        let mut vm = engine_for(PatternEngine::Vm);
        let mut interp = engine_for(PatternEngine::Interp);
        let mut sharded_interp = ShardedEngine::with_config(
            table.schema().clone(),
            rules.clone(),
            StreamConfig {
                shards: 2,
                pattern_engine: PatternEngine::Interp,
                ..StreamConfig::default()
            },
        );
        for (k, batch) in op_batches.iter().enumerate() {
            let a = fused.apply(batch.clone()).expect("ops are valid");
            let b = vm.apply(batch.clone()).expect("ops are valid");
            let c = interp.apply(batch.clone()).expect("ops are valid");
            let d = sharded_interp.apply(batch.clone()).expect("ops are valid");
            assert_eq!(a, b, "vm event stream diverged on {context} (batch {k})");
            assert_eq!(
                a, c,
                "interp event stream diverged on {context} (batch {k})"
            );
            assert_eq!(
                a, d,
                "sharded interpreted stream diverged on {context} (batch {k})"
            );
        }
        assert_eq!(fused.ledger().snapshot(), interp.ledger().snapshot());
        assert_eq!(vm.ledger().snapshot(), interp.ledger().snapshot());
        assert_eq!(
            fused.pattern_evals(),
            interp.pattern_evals(),
            "batch priming must be eval-count-neutral on {context}"
        );
        assert_eq!(
            fused.pattern_lookups(),
            interp.pattern_lookups(),
            "priming is not a lookup — per-row probe counts must agree on {context}"
        );
        assert_eq!(vm.pattern_evals(), interp.pattern_evals());
        assert_eq!(sharded_interp.pattern_evals(), interp.pattern_evals());
        for rule in 0..rules.len() {
            assert_eq!(fused.rule_health(rule), interp.rule_health(rule));
            assert_eq!(vm.rule_health(rule), interp.rule_health(rule));
        }
        assert_eq!(fused.drift_report(), interp.drift_report());
        assert_eq!(vm.drift_report(), interp.drift_report());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(4)))]

    /// The acceptance property: for random datasets, op interleavings,
    /// and batch splits, 1/2/4 shards are indistinguishable from the
    /// single-threaded engine.
    #[test]
    fn random_interleavings_are_shard_equivalent(
        seed in 0u64..10_000,
        rows in 60usize..160,
        churn_pct in 5u32..35,
        batch_a in 1usize..48,
        batch_b in 1usize..12,
    ) {
        let config = GenConfig { rows, seed, error_rate: 0.04 };
        let churn = f64::from(churn_pct) / 100.0;
        for (table, context) in [
            (zipcity::generate(&config, zipcity::ZipTarget::City).table, "zipcity (property)"),
            (names::generate(&config).table, "names (property)"),
        ] {
            let rules = discover(&table, &discovery_config());
            let ops = random_ops(&table, seed ^ 0x5eed, churn);
            let op_batches = batches(&ops, &[batch_a, batch_b]);
            assert_shard_equivalent(
                table.schema(),
                &rules,
                &op_batches,
                None,
                &CompactionPlan::default(),
                context,
            );
        }
    }

    /// The key-granular/pipelined acceptance property: for random
    /// datasets, op interleavings, batch splits, shard counts, and
    /// run-ahead windows, key-mode sharding is indistinguishable from
    /// the single-threaded engine — events per batch (in submission
    /// order), ledger, health, drift, and eval/lookup counters.
    #[test]
    fn random_interleavings_are_key_shard_equivalent(
        seed in 0u64..10_000,
        rows in 60usize..150,
        churn_pct in 5u32..35,
        batch_a in 1usize..40,
        batch_b in 1usize..10,
        // shards 1..=4 × run-ahead 0..=4, folded into one knob (the
        // vendored proptest implements `Strategy` for ≤6-tuples).
        knob in 0usize..20,
    ) {
        let shards = knob / 5 + 1;
        let run_ahead = knob % 5;
        let config = GenConfig { rows, seed, error_rate: 0.04 };
        let churn = f64::from(churn_pct) / 100.0;
        let table = zipcity::generate(&config, zipcity::ZipTarget::City).table;
        let rules = discover(&table, &discovery_config());
        let ops = random_ops(&table, seed ^ 0x6E4, churn);
        let op_batches = batches(&ops, &[batch_a, batch_b]);
        assert_specs_equivalent(
            table.schema(),
            &rules,
            &op_batches,
            None,
            &CompactionPlan::default(),
            &[ShardSpec::key(shards, run_ahead)],
            "zipcity (key property)",
        );
    }

    /// The sharded compaction acceptance property: random datasets, op
    /// interleavings, batch splits, and ratio-triggered epochs — every
    /// shard count produces the identical observable stream.
    #[test]
    fn ratio_triggered_epochs_are_shard_equivalent(
        seed in 0u64..10_000,
        rows in 60usize..150,
        churn_pct in 20u32..50,
        batch in 2usize..40,
    ) {
        let config = GenConfig { rows, seed, error_rate: 0.04 };
        let churn = f64::from(churn_pct) / 100.0;
        let table = zipcity::generate(&config, zipcity::ZipTarget::City).table;
        let rules = discover(&table, &discovery_config());
        let mut plan = CompactionPlan {
            force_after: None,
            ratio: 0.3,
            expected_epochs: Vec::new(),
        };
        let (op_batches, epochs) =
            epoch_aware_batches(&table, seed ^ 0xE90C, churn, &[batch, 3], plan.clone());
        plan.expected_epochs = epochs;
        assert_shard_equivalent(
            table.schema(),
            &rules,
            &op_batches,
            None,
            &plan,
            "zipcity (ratio epochs property)",
        );
    }
}
