//! Shard-equivalence — the determinism contract of the sharded engine:
//! for every datagen dataset and random op interleavings, a
//! [`ShardedEngine`] with 1/2/4 shards must produce the **same event
//! stream, batch by batch** (contents *and* order), the same final
//! ledger state, the same per-rule health, and the same drift report as
//! the single-threaded [`StreamEngine`] — bit-for-bit, regardless of
//! shard completion order, batch splits, or mid-stream rebalancing.
//!
//! Case count scales with `PROPTEST_CASES` (CI runs a dedicated
//! elevated-cases step so the concurrency path gets real coverage on
//! every push).

use anmat_core::{discover, DiscoveryConfig, Pfd};
use anmat_datagen::{chembl, employee, names, phone, zipcity, GenConfig};
use anmat_stream::{ShardedEngine, StreamEngine};
use anmat_table::{RowId, RowOp, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn discovery_config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.15,
        ..DiscoveryConfig::default()
    }
}

/// Local proptest case count, overridable by `PROPTEST_CASES` (the CI
/// elevated step); the in-repo default stays small because each case
/// runs discovery plus four full engines.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A random interleaving: every source row arrives as an insert; after
/// each arrival, with probability `churn` (repeatedly), a random live
/// slot is deleted or updated in place (same generator as
/// `tests/mutations.rs`).
fn random_ops(source: &Table, seed: u64, churn: f64) -> Vec<RowOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut live: Vec<RowId> = Vec::new();
    for r in 0..source.row_count() {
        ops.push(RowOp::Insert(source.row(r)));
        live.push(r);
        while !live.is_empty() && rng.random_bool(churn) {
            let pick = rng.random_range(0..live.len());
            let row = live[pick];
            if rng.random_bool(0.5) {
                live.remove(pick);
                ops.push(RowOp::Delete(row));
            } else {
                let donor = rng.random_range(0..source.row_count());
                ops.push(RowOp::Update(row, source.row(donor)));
            }
        }
    }
    ops
}

/// Split `ops` into batches whose sizes cycle through `batch_sizes`, so
/// the sharded fan-out is exercised at several batch granularities in
/// one run.
fn batches(ops: &[RowOp], batch_sizes: &[usize]) -> Vec<Vec<RowOp>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut size_idx = 0usize;
    while i < ops.len() {
        let size = batch_sizes[size_idx % batch_sizes.len()].max(1);
        size_idx += 1;
        let end = (i + size).min(ops.len());
        out.push(ops[i..end].to_vec());
        i = end;
    }
    out
}

/// Feed identical batch sequences to the single-threaded engine and to
/// sharded engines with 1/2/4 shards (optionally rebalancing the
/// sharded ones mid-stream), asserting the full determinism contract.
fn assert_shard_equivalent(
    schema: &anmat_table::Schema,
    rules: &[Pfd],
    op_batches: &[Vec<RowOp>],
    rebalance_at: Option<usize>,
    context: &str,
) {
    let mut single = StreamEngine::new(schema.clone(), rules.to_vec());
    let reference: Vec<Vec<_>> = op_batches
        .iter()
        .map(|batch| single.apply(batch.clone()).expect("ops are valid"))
        .collect();

    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedEngine::new(schema.clone(), rules.to_vec(), shards);
        for (k, batch) in op_batches.iter().enumerate() {
            if rebalance_at == Some(k) {
                sharded.rebalance();
            }
            let events = sharded.apply(batch.clone()).expect("ops are valid");
            assert_eq!(
                events, reference[k],
                "event stream diverged on {context} (shards={shards}, batch {k})"
            );
        }
        assert_eq!(
            sharded.ledger().snapshot(),
            single.ledger().snapshot(),
            "ledger state diverged on {context} (shards={shards})"
        );
        assert_eq!(sharded.ledger().live_count(), single.ledger().live_count());
        assert_eq!(
            sharded.ledger().created_total(),
            single.ledger().created_total(),
            "created totals diverged on {context} (shards={shards})"
        );
        assert_eq!(
            sharded.ledger().retracted_total(),
            single.ledger().retracted_total(),
            "retracted totals diverged on {context} (shards={shards})"
        );
        assert_eq!(
            sharded.table(),
            single.table(),
            "canonical table diverged on {context} (shards={shards})"
        );
        for rule in 0..rules.len() {
            assert_eq!(
                sharded.rule_health(rule),
                single.rule_health(rule),
                "rule {rule} health diverged on {context} (shards={shards})"
            );
        }
        assert_eq!(
            sharded.drift_report(),
            single.drift_report(),
            "drift report diverged on {context} (shards={shards})"
        );
    }
}

fn check_dataset(table: &Table, seed: u64, churn: f64, context: &str) {
    let rules = discover(table, &discovery_config());
    let ops = random_ops(table, seed, churn);
    let op_batches = batches(&ops, &[1, 7, 64, 3]);
    assert_shard_equivalent(table.schema(), &rules, &op_batches, None, context);
}

#[test]
fn every_datagen_dataset_is_shard_equivalent() {
    let config = GenConfig {
        rows: 180,
        seed: 0x5AAD,
        error_rate: 0.04,
    };
    check_dataset(&phone::generate(&config).table, 1, 0.15, "phone");
    check_dataset(&names::generate(&config).table, 2, 0.15, "names");
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::City).table,
        3,
        0.15,
        "zipcity/City",
    );
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::State).table,
        4,
        0.15,
        "zipcity/State",
    );
    check_dataset(&employee::generate(&config).table, 5, 0.15, "employee");
    check_dataset(&chembl::generate(&config).table, 6, 0.15, "chembl");
}

#[test]
fn replay_table_is_shard_equivalent() {
    let config = GenConfig {
        rows: 300,
        seed: 0xBEE5,
        error_rate: 0.03,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    let rules = discover(&data.table, &discovery_config());
    let mut single = StreamEngine::new(data.table.schema().clone(), rules.clone());
    let reference = single.replay_table(&data.table).expect("schema matches");
    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedEngine::new(data.table.schema().clone(), rules.clone(), shards);
        let events = sharded.replay_table(&data.table).expect("schema matches");
        assert_eq!(
            events, reference,
            "replay events diverged (shards={shards})"
        );
        assert_eq!(sharded.ledger().snapshot(), single.ledger().snapshot());
        assert_eq!(sharded.pattern_evals(), single.pattern_evals());
    }
}

#[test]
fn rebalancing_mid_stream_changes_nothing_observable() {
    let config = GenConfig {
        rows: 200,
        seed: 0x12EBA,
        error_rate: 0.05,
    };
    let data = names::generate(&config);
    let rules = discover(&data.table, &discovery_config());
    let ops = random_ops(&data.table, 7, 0.2);
    let op_batches = batches(&ops, &[16]);
    // Rebalance after roughly half the batches have flowed.
    let mid = op_batches.len() / 2;
    assert_shard_equivalent(
        data.table.schema(),
        &rules,
        &op_batches,
        Some(mid),
        "names + mid-stream rebalance",
    );
}

#[test]
fn drift_report_is_rule_index_sorted_across_engines() {
    use anmat_core::PatternTuple;
    use anmat_table::{Schema, Value};

    // Three constant rules that all drift (every matching row violates),
    // seeded so different shards own different rules — the report must
    // come back [0, 1, 2] regardless of which shard judged which rule.
    let schema = Schema::new(["zip", "city"]).unwrap();
    let rule = |expected: &str| {
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::constant(
                anmat_pattern_unconstrained("900\\D{2}"),
                expected,
            )],
        )
    };
    let rules = vec![rule("Alpha"), rule("Beta"), rule("Gamma")];
    let rows: Vec<Vec<Value>> = (0..12)
        .map(|i| vec![Value::text(format!("900{i:02}")), Value::text("Delta")])
        .collect();

    let mut single = StreamEngine::new(schema.clone(), rules.clone());
    single.push_batch(rows.clone()).unwrap();
    let single_report = single.drift_report();
    assert_eq!(
        single_report.iter().map(|d| d.rule).collect::<Vec<_>>(),
        vec![0, 1, 2],
        "single-threaded drift report must be rule-index sorted"
    );

    for shards in [2usize, 3] {
        let mut sharded = ShardedEngine::new(schema.clone(), rules.clone(), shards);
        sharded.push_batch(rows.clone()).unwrap();
        let report = sharded.drift_report();
        assert_eq!(
            report.iter().map(|d| d.rule).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "sharded drift report must be rule-index sorted (shards={shards})"
        );
        assert_eq!(report, single_report);
    }
}

/// Helper: an unconstrained pattern wrapped the way rule constructors
/// expect (kept out of line to keep the test body readable).
fn anmat_pattern_unconstrained(p: &str) -> anmat_pattern::ConstrainedPattern {
    anmat_pattern::ConstrainedPattern::unconstrained(p.parse().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(4)))]

    /// The acceptance property: for random datasets, op interleavings,
    /// and batch splits, 1/2/4 shards are indistinguishable from the
    /// single-threaded engine.
    #[test]
    fn random_interleavings_are_shard_equivalent(
        seed in 0u64..10_000,
        rows in 60usize..160,
        churn_pct in 5u32..35,
        batch_a in 1usize..48,
        batch_b in 1usize..12,
    ) {
        let config = GenConfig { rows, seed, error_rate: 0.04 };
        let churn = f64::from(churn_pct) / 100.0;
        for (table, context) in [
            (zipcity::generate(&config, zipcity::ZipTarget::City).table, "zipcity (property)"),
            (names::generate(&config).table, "names (property)"),
        ] {
            let rules = discover(&table, &discovery_config());
            let ops = random_ops(&table, seed ^ 0x5eed, churn);
            let op_batches = batches(&ops, &[batch_a, batch_b]);
            assert_shard_equivalent(table.schema(), &rules, &op_batches, None, context);
        }
    }
}
