//! Mutable-stream/batch equivalence — the tentpole property of the
//! delta pipeline: after *any* interleaving of insert/delete/update ops,
//! the `StreamEngine`'s ledger (active violations) must equal batch
//! `detect_all` over the surviving rows, and its per-rule drift health
//! (the confidence numerator and denominator) must equal what a fresh
//! engine computes when fed only the survivors.
//!
//! Ops are generated from a seed against each datagen dataset: the
//! dataset's rows arrive as inserts, interleaved with deletes and
//! updates of random live slots (update cells drawn from the dataset so
//! values stay in-domain). A mirror `Table` applies the identical ops,
//! so batch detection sees exactly the tombstoned state the engine
//! maintained incrementally — same `RowId`s, same survivors.

use anmat_core::{detect_all, discover, DiscoveryConfig, Pfd, Violation};
use anmat_datagen::{chembl, employee, names, phone, zipcity, GenConfig};
use anmat_stream::StreamEngine;
use anmat_table::{RowId, RowOp, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn discovery_config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.15,
        ..DiscoveryConfig::default()
    }
}

fn canonical(mut violations: Vec<Violation>) -> Vec<String> {
    violations.sort_by_key(|v| (v.row, v.dependency.clone()));
    let mut keys: Vec<String> = violations
        .iter()
        .map(|v| serde_json::to_string(v).expect("violations serialize"))
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// A random interleaving: every source row arrives as an insert; after
/// each arrival, with probability `churn` (repeatedly), a random live
/// slot is deleted or updated in place.
fn random_ops(source: &Table, seed: u64, churn: f64) -> Vec<RowOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut live: Vec<RowId> = Vec::new();
    for r in 0..source.row_count() {
        // Inserts allocate slot ids densely in order, so the r-th
        // source row lands in slot r regardless of interleaved ops.
        ops.push(RowOp::Insert(source.row(r)));
        live.push(r);
        while !live.is_empty() && rng.random_bool(churn) {
            let pick = rng.random_range(0..live.len());
            let row = live[pick];
            if rng.random_bool(0.5) {
                live.remove(pick);
                ops.push(RowOp::Delete(row));
            } else {
                let donor = rng.random_range(0..source.row_count());
                ops.push(RowOp::Update(row, source.row(donor)));
            }
        }
    }
    ops
}

/// Apply `ops` to a fresh engine and to a mirror table, then assert the
/// three-way equivalence: ledger vs batch-over-survivors, engine table
/// vs mirror, and per-rule health vs a survivors-only replay.
fn assert_mutation_equivalent(source: &Table, rules: &[Pfd], ops: &[RowOp], context: &str) {
    let mut engine = StreamEngine::new(source.schema().clone(), rules.to_vec());
    engine.apply(ops.to_vec()).expect("ops are valid");

    let mut mirror = Table::empty(source.schema().clone());
    for op in ops {
        mirror.apply(op.clone()).expect("ops are valid");
    }
    assert_eq!(
        engine.table(),
        &mirror,
        "engine table diverged from mirror on {context}"
    );
    assert_eq!(engine.live_rows(), mirror.live_rows());

    let streamed = canonical(engine.ledger().snapshot());
    let batch = canonical(detect_all(&mirror, rules));
    assert_eq!(
        streamed,
        batch,
        "stream and batch disagree on {context} ({} ops, {} survivors)",
        ops.len(),
        mirror.live_rows()
    );

    // Ledger accounting stays consistent under retractions.
    let ledger = engine.ledger();
    assert_eq!(
        ledger.live_count(),
        ledger.created_total() - ledger.retracted_total(),
        "ledger accounting broken on {context}"
    );

    // Drift health under shrinking denominators: a fresh engine fed only
    // the survivors (compacted, in row order) must agree on matched-row
    // counts, live violation tallies, and hence confidence, per rule.
    let survivors = mirror.filter_rows(|_| true);
    let mut replay = StreamEngine::new(survivors.schema().clone(), rules.to_vec());
    replay.replay_table(&survivors).expect("schema matches");
    for i in 0..rules.len() {
        let (mutated, replayed) = (engine.rule_health(i), replay.rule_health(i));
        assert_eq!(
            mutated,
            replayed,
            "rule {i} health diverged on {context}: confidence {} vs {}",
            mutated.confidence(),
            replayed.confidence()
        );
    }
}

fn check_dataset(table: &Table, seed: u64, churn: f64, context: &str) {
    let rules = discover(table, &discovery_config());
    let ops = random_ops(table, seed, churn);
    assert_mutation_equivalent(table, &rules, &ops, context);
}

#[test]
fn every_datagen_dataset_survives_churn() {
    let config = GenConfig {
        rows: 250,
        seed: 0xDE17A,
        error_rate: 0.04,
    };
    check_dataset(&phone::generate(&config).table, 1, 0.2, "phone");
    check_dataset(&names::generate(&config).table, 2, 0.2, "names");
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::City).table,
        3,
        0.2,
        "zipcity/City",
    );
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::State).table,
        4,
        0.2,
        "zipcity/State",
    );
    check_dataset(&employee::generate(&config).table, 5, 0.2, "employee");
    check_dataset(&chembl::generate(&config).table, 6, 0.2, "chembl");
}

#[test]
fn heavy_churn_deleting_most_of_the_table() {
    // Delete/update pressure high enough that blocks drain, majorities
    // flip repeatedly, and most slots end up tombstoned.
    let config = GenConfig {
        rows: 200,
        seed: 0xC0FFEE,
        error_rate: 0.06,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    check_dataset(&data.table, 99, 0.45, "zipcity heavy churn");
}

#[test]
fn delete_everything_then_start_over() {
    let config = GenConfig {
        rows: 120,
        seed: 11,
        error_rate: 0.05,
    };
    let data = names::generate(&config);
    let rules = discover(&data.table, &discovery_config());
    let n = data.table.row_count();
    let mut ops: Vec<RowOp> = (0..n).map(|r| RowOp::Insert(data.table.row(r))).collect();
    ops.extend((0..n).map(RowOp::Delete));
    ops.extend((0..n).map(|r| RowOp::Insert(data.table.row(r))));
    assert_mutation_equivalent(&data.table, &rules, &ops, "drain and refill");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole acceptance property: any seeded op interleaving over
    /// a seeded dataset converges to batch detection on the survivors —
    /// violations *and* per-rule confidence.
    #[test]
    fn random_interleavings_equal_batch_on_survivors(
        seed in 0u64..10_000,
        rows in 80usize..250,
        churn_pct in 5u32..40,
    ) {
        let config = GenConfig { rows, seed, error_rate: 0.04 };
        let churn = f64::from(churn_pct) / 100.0;
        check_dataset(
            &zipcity::generate(&config, zipcity::ZipTarget::City).table,
            seed ^ 0x5eed,
            churn,
            "zipcity (property)",
        );
        check_dataset(&names::generate(&config).table, seed ^ 0xabcd, churn, "names (property)");
    }
}
