//! Mutable-stream/batch equivalence — the tentpole property of the
//! delta pipeline: after *any* interleaving of insert/delete/update ops,
//! the `StreamEngine`'s ledger (active violations) must equal batch
//! `detect_all` over the surviving rows, and its per-rule drift health
//! (the confidence numerator and denominator) must equal what a fresh
//! engine computes when fed only the survivors.
//!
//! Ops are generated from a seed against each datagen dataset: the
//! dataset's rows arrive as inserts, interleaved with deletes and
//! updates of random live slots (update cells drawn from the dataset so
//! values stay in-domain). A mirror `Table` applies the identical ops,
//! so batch detection sees exactly the tombstoned state the engine
//! maintained incrementally — same `RowId`s, same survivors.

use anmat_core::{detect_all, discover, DiscoveryConfig, Pfd, Violation, ViolationKind};
use anmat_datagen::{chembl, employee, names, phone, zipcity, GenConfig};
use anmat_stream::{StreamConfig, StreamEngine};
use anmat_table::{RowId, RowOp, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::cases;

fn discovery_config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.15,
        ..DiscoveryConfig::default()
    }
}

fn canonical(mut violations: Vec<Violation>) -> Vec<String> {
    violations.sort_by_key(|v| (v.row, v.dependency.clone()));
    let mut keys: Vec<String> = violations
        .iter()
        .map(|v| serde_json::to_string(v).expect("violations serialize"))
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// A random interleaving: every source row arrives as an insert; after
/// each arrival, with probability `churn` (repeatedly), a random live
/// slot is deleted or updated in place.
fn random_ops(source: &Table, seed: u64, churn: f64) -> Vec<RowOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut live: Vec<RowId> = Vec::new();
    for r in 0..source.row_count() {
        // Inserts allocate slot ids densely in order, so the r-th
        // source row lands in slot r regardless of interleaved ops.
        ops.push(RowOp::Insert(source.row(r)));
        live.push(r);
        while !live.is_empty() && rng.random_bool(churn) {
            let pick = rng.random_range(0..live.len());
            let row = live[pick];
            if rng.random_bool(0.5) {
                live.remove(pick);
                ops.push(RowOp::Delete(row));
            } else {
                let donor = rng.random_range(0..source.row_count());
                ops.push(RowOp::Update(row, source.row(donor)));
            }
        }
    }
    ops
}

/// Apply `ops` to a fresh engine and to a mirror table, then assert the
/// three-way equivalence: ledger vs batch-over-survivors, engine table
/// vs mirror, and per-rule health vs a survivors-only replay.
fn assert_mutation_equivalent(source: &Table, rules: &[Pfd], ops: &[RowOp], context: &str) {
    let mut engine = StreamEngine::new(source.schema().clone(), rules.to_vec());
    engine.apply(ops.to_vec()).expect("ops are valid");

    let mut mirror = Table::empty(source.schema().clone());
    for op in ops {
        mirror.apply(op.clone()).expect("ops are valid");
    }
    assert_eq!(
        engine.table(),
        &mirror,
        "engine table diverged from mirror on {context}"
    );
    assert_eq!(engine.live_rows(), mirror.live_rows());

    let streamed = canonical(engine.ledger().snapshot());
    let batch = canonical(detect_all(&mirror, rules));
    assert_eq!(
        streamed,
        batch,
        "stream and batch disagree on {context} ({} ops, {} survivors)",
        ops.len(),
        mirror.live_rows()
    );

    // Ledger accounting stays consistent under retractions.
    let ledger = engine.ledger();
    assert_eq!(
        ledger.live_count(),
        ledger.created_total() - ledger.retracted_total(),
        "ledger accounting broken on {context}"
    );

    // Drift health under shrinking denominators: a fresh engine fed only
    // the survivors (compacted, in row order) must agree on matched-row
    // counts, live violation tallies, and hence confidence, per rule.
    let survivors = mirror.filter_rows(|_| true);
    let mut replay = StreamEngine::new(survivors.schema().clone(), rules.to_vec());
    replay.replay_table(&survivors).expect("schema matches");
    for i in 0..rules.len() {
        let (mutated, replayed) = (engine.rule_health(i), replay.rule_health(i));
        assert_eq!(
            mutated,
            replayed,
            "rule {i} health diverged on {context}: confidence {} vs {}",
            mutated.confidence(),
            replayed.confidence()
        );
    }
}

fn check_dataset(table: &Table, seed: u64, churn: f64, context: &str) {
    let rules = discover(table, &discovery_config());
    let ops = random_ops(table, seed, churn);
    assert_mutation_equivalent(table, &rules, &ops, context);
}

#[test]
fn every_datagen_dataset_survives_churn() {
    let config = GenConfig {
        rows: 250,
        seed: 0xDE17A,
        error_rate: 0.04,
    };
    check_dataset(&phone::generate(&config).table, 1, 0.2, "phone");
    check_dataset(&names::generate(&config).table, 2, 0.2, "names");
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::City).table,
        3,
        0.2,
        "zipcity/City",
    );
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::State).table,
        4,
        0.2,
        "zipcity/State",
    );
    check_dataset(&employee::generate(&config).table, 5, 0.2, "employee");
    check_dataset(&chembl::generate(&config).table, 6, 0.2, "chembl");
}

#[test]
fn heavy_churn_deleting_most_of_the_table() {
    // Delete/update pressure high enough that blocks drain, majorities
    // flip repeatedly, and most slots end up tombstoned.
    let config = GenConfig {
        rows: 200,
        seed: 0xC0FFEE,
        error_rate: 0.06,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    check_dataset(&data.table, 99, 0.45, "zipcity heavy churn");
}

#[test]
fn delete_everything_then_start_over() {
    let config = GenConfig {
        rows: 120,
        seed: 11,
        error_rate: 0.05,
    };
    let data = names::generate(&config);
    let rules = discover(&data.table, &discovery_config());
    let n = data.table.row_count();
    let mut ops: Vec<RowOp> = (0..n).map(|r| RowOp::Insert(data.table.row(r))).collect();
    ops.extend((0..n).map(RowOp::Delete));
    ops.extend((0..n).map(|r| RowOp::Insert(data.table.row(r))));
    assert_mutation_equivalent(&data.table, &rules, &ops, "drain and refill");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole acceptance property: any seeded op interleaving over
    /// a seeded dataset converges to batch detection on the survivors —
    /// violations *and* per-rule confidence.
    #[test]
    fn random_interleavings_equal_batch_on_survivors(
        seed in 0u64..10_000,
        rows in 80usize..250,
        churn_pct in 5u32..40,
    ) {
        let config = GenConfig { rows, seed, error_rate: 0.04 };
        let churn = f64::from(churn_pct) / 100.0;
        check_dataset(
            &zipcity::generate(&config, zipcity::ZipTarget::City).table,
            seed ^ 0x5eed,
            churn,
            "zipcity (property)",
        );
        check_dataset(&names::generate(&config).table, seed ^ 0xabcd, churn, "names (property)");
    }
}

// ───────────────────────── compaction epochs ─────────────────────────
//
// The remap-protocol acceptance property: a run that compacts (forced at
// random points, or automatically off `compact_ratio`) must be
// observably identical to a run that never compacts — event streams
// (order included), live violation sets, per-rule health, and drift
// reports all agree once compacted row ids are translated back through
// the accumulated remap; `pattern_evals` must not move on compaction;
// and with `compact_ratio` 0.3 the slot count stays within 2× the live
// rows at every batch boundary.

/// Rewrite a compacted-run violation's row references into the
/// uncompacted run's id space. `cur_to_base` is maintained by the
/// paired driver: index = current slot id, value = the slot id the same
/// logical row has in the never-compacted twin. The mapping is strictly
/// increasing (both sides number rows by arrival), so sorted witness
/// lists stay sorted.
fn translate_violation(v: &Violation, cur_to_base: &[RowId]) -> Violation {
    let mut v = v.clone();
    v.row = cur_to_base[v.row];
    if let ViolationKind::Variable { witnesses, .. } = &mut v.kind {
        for w in witnesses {
            *w = cur_to_base[*w];
        }
    }
    if let Some(repair) = &mut v.repair {
        repair.row = cur_to_base[repair.row];
    }
    v
}

/// Drive a compacting engine and a never-compacting twin through the
/// same logical op stream and assert, batch by batch, that compaction
/// is observationally invisible modulo the id translation.
///
/// `auto_ratio > 0` enables the engine's own trigger
/// (`StreamConfig::compact_ratio`); `force_compaction` additionally
/// calls `compact()` between random batches. Ops are generated in
/// whatever id space the compacting engine currently speaks, with the
/// twin's ops translated on the fly.
fn check_compaction_invisible(
    source: &Table,
    seed: u64,
    churn: f64,
    auto_ratio: f64,
    force_compaction: bool,
    context: &str,
) {
    let rules = discover(source, &discovery_config());
    let mut plain = StreamEngine::new(source.schema().clone(), rules.clone());
    let config = StreamConfig {
        compact_ratio: auto_ratio,
        ..StreamConfig::default()
    };
    let mut compacted = StreamEngine::with_config(source.schema().clone(), rules.clone(), config);

    let mut rng = StdRng::seed_from_u64(seed);
    // Current-slot → twin-slot translation; entries for tombstoned slots
    // survive until a compaction drops them (events may still cite them
    // within the batch that deleted them).
    let mut cur_to_base: Vec<RowId> = Vec::new();
    let mut live_cur: Vec<RowId> = Vec::new();
    let mut next_source_row = 0usize;
    let mut epochs_seen = 0u64;

    while next_source_row < source.row_count() {
        // One batch: a handful of arrivals, each chased by churn.
        let mut cur_ops = Vec::new();
        let mut base_ops = Vec::new();
        let batch_rows = rng
            .random_range(1usize..24)
            .min(source.row_count() - next_source_row);
        for _ in 0..batch_rows {
            let cells = source.row(next_source_row);
            next_source_row += 1;
            live_cur.push(cur_to_base.len());
            cur_to_base.push(cur_to_base.len() + epochs_reclaimed(&plain, &compacted));
            cur_ops.push(RowOp::Insert(cells.clone()));
            base_ops.push(RowOp::Insert(cells));
            while !live_cur.is_empty() && rng.random_bool(churn) {
                let pick = rng.random_range(0..live_cur.len());
                let cur = live_cur[pick];
                if rng.random_bool(0.5) {
                    live_cur.remove(pick);
                    cur_ops.push(RowOp::Delete(cur));
                    base_ops.push(RowOp::Delete(cur_to_base[cur]));
                } else {
                    let donor = rng.random_range(0..source.row_count());
                    cur_ops.push(RowOp::Update(cur, source.row(donor)));
                    base_ops.push(RowOp::Update(cur_to_base[cur], source.row(donor)));
                }
            }
        }
        let epoch_at_start = compacted.epoch();
        let base_events = plain.apply(base_ops).expect("twin ops are valid");
        let cur_events = compacted.apply(cur_ops).expect("ops are valid");

        // Event streams: same length, same order, same content modulo
        // the id translation; epochs stamp the space each event's ids
        // live in.
        assert_eq!(
            base_events.len(),
            cur_events.len(),
            "event counts diverged on {context}"
        );
        for (base_ev, cur_ev) in base_events.iter().zip(&cur_events) {
            assert_eq!(base_ev.epoch, 0, "uncompacted run never leaves epoch 0");
            assert_eq!(
                cur_ev.epoch, epoch_at_start,
                "events carry the epoch they were emitted in on {context}"
            );
            assert_eq!(base_ev.is_created(), cur_ev.is_created());
            assert_eq!(
                base_ev.violation(),
                &translate_violation(cur_ev.violation(), &cur_to_base),
                "event diverged modulo remap on {context}"
            );
        }

        // Health and drift judge identically — no ids involved.
        for rule in 0..rules.len() {
            assert_eq!(
                plain.rule_health(rule),
                compacted.rule_health(rule),
                "rule {rule} health diverged on {context}"
            );
        }
        assert_eq!(
            plain.drift_report(),
            compacted.drift_report(),
            "drift reports diverged on {context}"
        );

        // Detect the engine's own compactions; optionally force one.
        let mut epoch = compacted.epoch();
        if epoch == epoch_at_start && force_compaction && rng.random_bool(0.35) {
            let evals_before = compacted.pattern_evals();
            compacted.compact();
            assert_eq!(
                compacted.pattern_evals(),
                evals_before,
                "compaction must not move pattern_evals on {context}"
            );
            epoch = compacted.epoch();
        }
        if epoch != epochs_seen {
            epochs_seen = epoch;
            // Rebuild the translation: survivors keep arrival order.
            live_cur.sort_unstable();
            cur_to_base = live_cur.iter().map(|&cur| cur_to_base[cur]).collect();
            live_cur = (0..cur_to_base.len()).collect();
            assert_eq!(compacted.row_count(), cur_to_base.len());
        }

        // The acceptance bound: slots within 2× live rows at every
        // batch boundary once auto-compaction is on.
        if auto_ratio > 0.0 {
            assert!(
                compacted.row_count() <= 2 * compacted.live_rows().max(1),
                "slots {} exceeded 2× live {} on {context}",
                compacted.row_count(),
                compacted.live_rows()
            );
        }

        // Live violation sets agree modulo translation.
        let translated: Vec<Violation> = compacted
            .ledger()
            .snapshot()
            .iter()
            .map(|v| translate_violation(v, &cur_to_base))
            .collect();
        assert_eq!(
            canonical(plain.ledger().snapshot()),
            canonical(translated),
            "ledger state diverged on {context}"
        );
        assert_eq!(
            plain.ledger().created_total(),
            compacted.ledger().created_total()
        );
        assert_eq!(
            plain.ledger().retracted_total(),
            compacted.ledger().retracted_total()
        );
    }

    // Terminal cross-check straight against batch detection: the
    // compacted table is dense, so its ids are exactly what `detect_all`
    // sees.
    assert_eq!(
        canonical(compacted.ledger().snapshot()),
        canonical(detect_all(compacted.table(), &rules)),
        "compacted engine diverged from batch detection on {context}"
    );
    // And the surviving row contents line up pairwise.
    let plain_rows: Vec<Vec<anmat_table::ValueId>> = plain
        .table()
        .iter_live()
        .map(|r| plain.table().row_ids(r))
        .collect();
    let compacted_rows: Vec<Vec<anmat_table::ValueId>> = compacted
        .table()
        .iter_live()
        .map(|r| compacted.table().row_ids(r))
        .collect();
    assert_eq!(
        plain_rows, compacted_rows,
        "survivors diverged on {context}"
    );
}

/// Slots the compacting engine dropped so far = how far its slot ids
/// lag the twin's. (Helper for assigning the twin id of a fresh
/// insert: twin ids never shrink.)
fn epochs_reclaimed(plain: &StreamEngine, compacted: &StreamEngine) -> usize {
    debug_assert!(plain.row_count() >= compacted.row_count());
    plain.row_count() - compacted.row_count()
}

#[test]
fn forced_compaction_at_random_points_is_invisible() {
    let config = GenConfig {
        rows: 220,
        seed: 0xC0DA,
        error_rate: 0.05,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    check_compaction_invisible(
        &data.table,
        17,
        0.25,
        0.0,
        true,
        "zipcity forced compaction",
    );
    let data = names::generate(&config);
    check_compaction_invisible(&data.table, 18, 0.25, 0.0, true, "names forced compaction");
}

#[test]
fn ratio_triggered_compaction_bounds_slots_on_a_half_delete_workload() {
    // The acceptance workload: ~50% of churn ops are deletes, ratio 0.3.
    let config = GenConfig {
        rows: 260,
        seed: 0x3AC7,
        error_rate: 0.05,
    };
    let data = zipcity::generate(&config, zipcity::ZipTarget::City);
    check_compaction_invisible(&data.table, 19, 0.45, 0.3, false, "zipcity ratio 0.3");
}

#[test]
fn compaction_of_a_fully_drained_table_restarts_cleanly() {
    let config = GenConfig {
        rows: 90,
        seed: 23,
        error_rate: 0.05,
    };
    let data = names::generate(&config);
    let rules = discover(&data.table, &discovery_config());
    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.clone());
    let n = data.table.row_count();
    let inserts: Vec<RowOp> = (0..n).map(|r| RowOp::Insert(data.table.row(r))).collect();
    engine.apply(inserts.clone()).expect("valid");
    engine.apply((0..n).map(RowOp::Delete)).expect("valid");
    let remap = engine.compact();
    assert_eq!(remap.new_slots(), 0);
    assert_eq!(engine.row_count(), 0);
    assert!(engine.ledger().is_empty());
    // Refill from slot 0 in the new epoch: equivalent to a fresh run.
    engine.apply(inserts).expect("valid");
    assert_eq!(
        canonical(engine.ledger().snapshot()),
        canonical(detect_all(engine.table(), &rules)),
    );
    assert!(engine.ledger().snapshot().iter().all(|v| v.row < n));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(4)))]

    /// The compaction acceptance property: random interleavings with
    /// compaction forced at random points — and, in the ratio variant,
    /// triggered automatically — are observationally identical to an
    /// uncompacted run and to batch detection over the survivors.
    #[test]
    fn random_interleavings_with_compaction_equal_uncompacted_runs(
        seed in 0u64..10_000,
        rows in 80usize..220,
        churn_pct in 15u32..50,
        auto_bit in 0u32..2,
    ) {
        let config = GenConfig { rows, seed, error_rate: 0.04 };
        let churn = f64::from(churn_pct) / 100.0;
        let auto = auto_bit == 1;
        let ratio = if auto { 0.3 } else { 0.0 };
        check_compaction_invisible(
            &zipcity::generate(&config, zipcity::ZipTarget::City).table,
            seed ^ 0xC0DA,
            churn,
            ratio,
            !auto,
            "zipcity (compaction property)",
        );
        check_compaction_invisible(
            &names::generate(&config).table,
            seed ^ 0xFACE,
            churn,
            ratio,
            !auto,
            "names (compaction property)",
        );
    }
}
