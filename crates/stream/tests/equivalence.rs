//! Stream/batch equivalence: replaying any seeded `datagen` table
//! row-by-row through the `StreamEngine` must end in exactly the
//! violation set batch `detect_all` computes on the full table — for
//! constant, variable, and mixed PFDs, discovered or handcrafted.

use anmat_core::{detect_all, discover, DiscoveryConfig, PatternTuple, Pfd, Violation};
use anmat_datagen::{chembl, employee, names, phone, zipcity, GenConfig};
use anmat_stream::StreamEngine;
use anmat_table::Table;
use proptest::prelude::*;

fn discovery_config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.15,
        ..DiscoveryConfig::default()
    }
}

fn canonical(mut violations: Vec<Violation>) -> Vec<String> {
    violations.sort_by_key(|v| (v.row, v.dependency.clone()));
    let mut keys: Vec<String> = violations
        .iter()
        .map(|v| serde_json::to_string(v).expect("violations serialize"))
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Replay `table` through a fresh engine and compare against batch.
fn assert_equivalent(table: &Table, rules: &[Pfd], context: &str) {
    let mut engine = StreamEngine::new(table.schema().clone(), rules.to_vec());
    engine.replay_table(table).expect("schema matches");
    let streamed = canonical(engine.ledger().snapshot());
    let batch = canonical(detect_all(table, rules));
    assert_eq!(
        streamed,
        batch,
        "stream and batch disagree on {context} ({} rules)",
        rules.len()
    );
    // Ledger sanity: live = created − retracted.
    assert_eq!(
        engine.ledger().live_count(),
        engine.ledger().created_total() - engine.ledger().retracted_total(),
        "ledger accounting broken on {context}"
    );
}

/// Discover on the full table, then verify the replay reproduces batch
/// detection under those rules.
fn check_dataset(table: &Table, context: &str) {
    let rules = discover(table, &discovery_config());
    assert_equivalent(table, &rules, context);
}

#[test]
fn every_datagen_dataset_replays_to_batch() {
    let config = GenConfig {
        rows: 400,
        seed: 0xA11CE,
        error_rate: 0.03,
    };
    check_dataset(&phone::generate(&config).table, "phone");
    check_dataset(&names::generate(&config).table, "names");
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::City).table,
        "zipcity/City",
    );
    check_dataset(
        &zipcity::generate(&config, zipcity::ZipTarget::State).table,
        "zipcity/State",
    );
    check_dataset(&employee::generate(&config).table, "employee");
    check_dataset(&chembl::generate(&config).table, "chembl");
}

#[test]
fn handcrafted_mixed_tableau_replays_to_batch() {
    // A mixed PFD (constant + variable tuples over the same pair)
    // exercises both incremental paths at once.
    let data = zipcity::generate(
        &GenConfig {
            rows: 300,
            seed: 7,
            error_rate: 0.05,
        },
        zipcity::ZipTarget::City,
    );
    let mixed = Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![
            PatternTuple::constant(
                anmat_pattern::ConstrainedPattern::unconstrained("900\\D{2}".parse().unwrap()),
                "Los Angeles",
            ),
            PatternTuple::variable("[\\D{3}]\\D{2}".parse().unwrap()),
        ],
    );
    assert_equivalent(&data.table, &[mixed], "handcrafted mixed tableau");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole acceptance property: any seeded table, replayed
    /// row-by-row, converges to the batch violation set under discovered
    /// rules (constant and variable PFDs alike).
    #[test]
    fn replay_equals_batch_on_any_seed(seed in 0u64..10_000, rows in 100usize..400) {
        let config = GenConfig { rows, seed, error_rate: 0.03 };
        check_dataset(&names::generate(&config).table, "names (property)");
        check_dataset(
            &zipcity::generate(&config, zipcity::ZipTarget::City).table,
            "zipcity (property)",
        );
    }

    /// Batch order independence: pushing in batches of `k` gives the
    /// same final state as row-by-row replay.
    #[test]
    fn batch_size_does_not_change_final_state(seed in 0u64..10_000, k in 1usize..50) {
        let config = GenConfig { rows: 200, seed, error_rate: 0.04 };
        let data = phone::generate(&config);
        let rules = discover(&data.table, &discovery_config());

        let mut row_by_row = StreamEngine::new(data.table.schema().clone(), rules.clone());
        row_by_row.replay_table(&data.table).unwrap();

        let mut batched = StreamEngine::new(data.table.schema().clone(), rules);
        let mut pending = Vec::new();
        for r in 0..data.table.row_count() {
            pending.push(data.table.row(r));
            if pending.len() == k {
                batched.push_batch(std::mem::take(&mut pending)).unwrap();
            }
        }
        batched.push_batch(pending).unwrap();

        prop_assert_eq!(
            canonical(row_by_row.ledger().snapshot()),
            canonical(batched.ledger().snapshot())
        );
    }
}
