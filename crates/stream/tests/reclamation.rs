//! Epoch-tied string reclamation is *observably free*: an engine that
//! sweeps the [`ValuePool`] at its compaction barriers must be
//! indistinguishable — events, ledger, resolved table content, per-rule
//! health, drift — from a never-reclaiming twin fed the identical op
//! stream, for both the single-threaded and the sharded engine. And
//! copy-on-write snapshots must stay frozen while ingest (and
//! compaction, and deferred reclamation) continue underneath them.
//!
//! The pool is process-global and refcounts are shared, so every test
//! works in its own string universe: cities and constant-rule RHS carry
//! a `rcl`-seed tag, and each test function draws zips from a disjoint
//! 3-digit prefix bank. An id this file frees is therefore never
//! resolved by a concurrently-running test, and a leaked refcount from
//! a dropped engine can never block another case's sweep. Tables are
//! compared by *resolved content* (strings, not raw ids): a string
//! freed and later re-interned legitimately comes back under a recycled
//! id, and id identity was never part of the observable contract.

use anmat_core::{PatternTuple, Pfd, Violation};
use anmat_stream::{LedgerEvent, ShardBy, ShardedEngine, StreamConfig, StreamEngine};
use anmat_table::{RowOp, Schema, Table, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::cases;

/// λ5-style variable rule (shared zip prefix ⇒ shared city) plus a
/// constant rule (`prefixes[0]xx ⇒ "<tag>-LA"`) so both tuple kinds
/// hold protected ids across sweeps.
fn rules(tag: &str, prefixes: [&str; 5]) -> Vec<Pfd> {
    vec![
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::variable("[\\D{3}]\\D{2}".parse().unwrap())],
        ),
        Pfd::new(
            "ZipConst",
            "zip",
            "city",
            vec![PatternTuple::constant(
                anmat_pattern::ConstrainedPattern::unconstrained(
                    format!("{}\\D{{2}}", prefixes[0]).parse().unwrap(),
                ),
                format!("{tag}-LA"),
            )],
        ),
    ]
}

fn schema() -> Schema {
    Schema::new(["zip", "city"]).unwrap()
}

/// One scripted step: an op batch, then optionally a compaction
/// barrier. Compaction renumbers live rows (sorted survivors → `0..n`),
/// so ops must be generated against the *post-remap* id space — the
/// script bakes the barriers in and the generator tracks the
/// renumbering, which is deterministic and identical across every
/// engine flavour (the shard-equivalence contract covers compaction).
struct Step {
    ops: Vec<RowOp>,
    compact: bool,
}

/// A churn-heavy script in the `tag`/`prefixes` universe: inserts with
/// shared and unique city strings, random deletes/updates, a compaction
/// barrier every third batch, and a final guaranteed purge of half the
/// survivors — so some unique strings *always* lose their last
/// reference before the last barrier.
fn churn_script(tag: &str, prefixes: [&str; 5], seed: u64, rows: usize) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut script = Vec::new();
    let mut live: Vec<usize> = Vec::new();
    let mut next_slot = 0usize;
    let cell = |rng: &mut StdRng, i: usize| -> Vec<Value> {
        // Five zip prefixes; prefixes[0] exercises the constant rule.
        let prefix = prefixes[rng.random_range(0..5usize)];
        let zip = format!("{prefix}{:02}", rng.random_range(0..100));
        let city = if rng.random_bool(0.6) {
            // Block-majority material: one shared city per prefix.
            format!("{tag}-city-{prefix}")
        } else {
            // Unique per row — exactly the strings churn strands.
            format!("{tag}-unique-{i}")
        };
        vec![Value::text(zip), Value::text(city)]
    };
    let batches = rows.div_ceil(12);
    for b in 0..batches {
        let mut ops = Vec::new();
        for i in 0..12 {
            let arrival = b * 12 + i;
            ops.push(RowOp::Insert(cell(&mut rng, arrival)));
            live.push(next_slot);
            next_slot += 1;
            if !live.is_empty() && rng.random_bool(0.35) {
                let pick = rng.random_range(0..live.len());
                if rng.random_bool(0.5) {
                    ops.push(RowOp::Delete(live.remove(pick)));
                } else {
                    ops.push(RowOp::Update(live[pick], cell(&mut rng, rows + arrival)));
                }
            }
        }
        let barrier = b % 3 == 2;
        script.push(Step {
            ops,
            compact: barrier,
        });
        if barrier {
            // Mirror the engine's remap: sorted survivors → 0..n.
            live.sort_unstable();
            live = (0..live.len()).collect();
            next_slot = live.len();
        }
    }
    // Deterministic tail churn: whatever the dice did, half the
    // survivors (unique cities among them) die before the last barrier.
    let ops = (0..live.len() / 2)
        .map(|_| RowOp::Delete(live.remove(0)))
        .collect();
    script.push(Step { ops, compact: true });
    script
}

/// The table's observable content: epoch plus every live row resolved
/// to strings. Raw `ValueId`s are deliberately absent — a reclaimed
/// string re-interned later rides a recycled id, and id identity was
/// never part of the engine's contract.
type ResolvedTable = (u64, Vec<(usize, Vec<Option<String>>)>);

fn resolved_rows(table: &Table) -> ResolvedTable {
    let rows = table
        .iter_live()
        .map(|row| {
            let cells = (0..table.schema().arity())
                .map(|col| table.cell_str(row, col).map(str::to_owned))
                .collect();
            (row, cells)
        })
        .collect();
    (table.epoch(), rows)
}

/// Everything two engines must agree on, as owned data (strings, not
/// ids — safe to hold across later sweeps).
#[derive(Debug, PartialEq)]
struct Observed {
    events: Vec<LedgerEvent>,
    live: Vec<Violation>,
    created: usize,
    retracted: usize,
    table: ResolvedTable,
    health: Vec<anmat_stream::RuleHealth>,
    drift: Vec<anmat_stream::DriftReport>,
}

fn observe(
    events: Vec<LedgerEvent>,
    table: &Table,
    ledger: &anmat_stream::ViolationLedger,
    health: Vec<anmat_stream::RuleHealth>,
    drift: Vec<anmat_stream::DriftReport>,
) -> Observed {
    Observed {
        events,
        live: ledger.snapshot(),
        created: ledger.created_total(),
        retracted: ledger.retracted_total(),
        table: resolved_rows(table),
        health,
        drift,
    }
}

/// Run the script — several explicit compaction barriers, each a sweep
/// opportunity — collecting the full observable record.
fn run_single(config: StreamConfig, rules: Vec<Pfd>, script: &[Step]) -> (Observed, usize) {
    let mut engine = StreamEngine::with_config(schema(), rules, config);
    let mut events = Vec::new();
    for step in script {
        events.extend(engine.apply(step.ops.clone()).expect("valid ops"));
        if step.compact {
            engine.compact();
        }
    }
    let health = (0..2).map(|i| engine.rule_health(i)).collect();
    let observed = observe(
        events,
        engine.table(),
        engine.ledger(),
        health,
        engine.drift_report(),
    );
    (observed, engine.reclaim_stats().strings)
}

fn run_sharded(config: StreamConfig, rules: Vec<Pfd>, script: &[Step]) -> (Observed, usize) {
    let mut engine = ShardedEngine::with_config(schema(), rules, config);
    let mut events = Vec::new();
    for step in script {
        events.extend(engine.apply(step.ops.clone()).expect("valid ops"));
        if step.compact {
            engine.compact();
        }
    }
    let health = (0..2).map(|i| engine.rule_health(i)).collect();
    let observed = observe(
        events,
        engine.table(),
        engine.ledger(),
        health,
        engine.drift_report(),
    );
    (observed, engine.reclaim_stats().strings)
}

/// Zip prefixes for the twin property. Disjoint from the snapshot
/// tests' banks so a sweep here never frees a zip a concurrently
/// running (non-refcounting) engine still resolves.
const TWIN_PREFIXES: [&str; 5] = ["900", "104", "117", "235", "462"];

fn reclaim_twin_case(tag: &str, seed: u64) {
    let script = churn_script(tag, TWIN_PREFIXES, seed, 96);
    let base = StreamConfig {
        min_support: 4,
        ..StreamConfig::default()
    };

    // The twin runs FIRST and never reclaims (nor refcounts), so its
    // observables are collected before any sweep can free a string it
    // would still resolve.
    let (twin, twin_freed) = run_single(base, rules(tag, TWIN_PREFIXES), &script);
    assert_eq!(twin_freed, 0, "twin must never reclaim");

    let reclaiming = StreamConfig {
        reclaim: true,
        ..base
    };
    let (swept, freed) = run_single(reclaiming, rules(tag, TWIN_PREFIXES), &script);
    assert!(
        freed > 0,
        "churn stranded unique strings, so the sweep must free some ({tag}, seed {seed})"
    );
    assert_eq!(
        swept, twin,
        "reclamation changed observable state ({tag}, seed {seed})"
    );

    // Same contract across the sharded engine, both axes, pipelined.
    for (shards, shard_by, run_ahead) in [(2, ShardBy::Rule, 0), (3, ShardBy::Key, 2)] {
        let config = StreamConfig {
            shards,
            shard_by,
            run_ahead,
            ..reclaiming
        };
        let (sharded, sharded_freed) = run_sharded(config, rules(tag, TWIN_PREFIXES), &script);
        assert!(
            sharded_freed > 0,
            "sharded sweep must free stranded strings ({tag}, seed {seed}, {shard_by:?})"
        );
        assert_eq!(
            sharded, twin,
            "sharded reclamation diverged ({tag}, seed {seed}, {shard_by:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// The headline twin property: reclamation is observably invisible
    /// on every engine flavour.
    #[test]
    fn churn_with_reclamation_matches_never_reclaiming_twin(seed in 0u64..4096) {
        reclaim_twin_case(&format!("rclA{seed}"), seed);
    }
}

/// A snapshot taken mid-stream equals an eager deep copy taken at the
/// same instant, no matter how much ingest, compaction, and (deferred)
/// reclamation happen afterwards — and the deferral itself is visible:
/// no string is freed while the snapshot lives, the queued candidates
/// sweep at the first barrier after it drops.
#[test]
fn snapshot_stays_frozen_while_ingest_mutates() {
    let tag = "rclB";
    let prefixes = ["500", "514", "527", "535", "542"];
    let script = churn_script(tag, prefixes, 7, 80);
    let config = StreamConfig {
        reclaim: true,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::with_config(schema(), rules(tag, prefixes), config);
    let (head, tail) = script.split_at(script.len() / 2);
    for step in head {
        engine.apply(step.ops.clone()).expect("valid ops");
        if step.compact {
            engine.compact();
        }
    }

    let snap = engine.snapshot();
    let frozen_table = engine.table().clone();
    let frozen_live = engine.ledger().snapshot();
    let epoch_at_capture = engine.epoch();
    let freed_at_capture = engine.reclaim_stats().strings;

    for step in tail {
        engine.apply(step.ops.clone()).expect("valid ops");
        if step.compact {
            engine.compact();
        }
    }
    // Sweeps deferred while the snapshot pins the pool view…
    assert_eq!(
        engine.reclaim_stats().strings,
        freed_at_capture,
        "no string may be freed while a snapshot is alive"
    );
    // …and the frozen view is bit-for-bit the capture-time state.
    assert_eq!(snap.table(), &frozen_table);
    assert_eq!(snap.ledger().snapshot(), frozen_live);
    assert_eq!(snap.epoch(), epoch_at_capture);
    assert_ne!(
        engine.table(),
        &frozen_table,
        "tail churn must actually have mutated the live table"
    );

    // Dropping the snapshot releases the pin; the queued candidates
    // were preserved across the deferred barriers and sweep now.
    drop(snap);
    engine.compact();
    assert!(
        engine.reclaim_stats().strings > freed_at_capture,
        "deferred candidates must sweep at the first unpinned barrier"
    );
}

/// The sharded engine's snapshot sits at a clean pipeline barrier and
/// behaves identically: frozen view, deferral, post-drop sweep.
#[test]
fn sharded_snapshot_stays_frozen_and_defers_sweeps() {
    let tag = "rclC";
    let prefixes = ["600", "614", "627", "635", "642"];
    let script = churn_script(tag, prefixes, 11, 80);
    let config = StreamConfig {
        reclaim: true,
        shards: 3,
        shard_by: ShardBy::Key,
        run_ahead: 2,
        ..StreamConfig::default()
    };
    let mut engine = ShardedEngine::with_config(schema(), rules(tag, prefixes), config);
    let (head, tail) = script.split_at(script.len() / 2);
    for step in head {
        engine.apply(step.ops.clone()).expect("valid ops");
        if step.compact {
            engine.compact();
        }
    }

    let snap = engine.snapshot();
    let frozen_table = engine.table().clone();
    let frozen_live = engine.ledger().snapshot();
    let freed_at_capture = engine.reclaim_stats().strings;

    for step in tail {
        engine.apply(step.ops.clone()).expect("valid ops");
        if step.compact {
            engine.compact();
        }
    }
    assert_eq!(engine.reclaim_stats().strings, freed_at_capture);
    assert_eq!(snap.table(), &frozen_table);
    assert_eq!(snap.ledger().snapshot(), frozen_live);

    drop(snap);
    engine.compact();
    assert!(engine.reclaim_stats().strings > freed_at_capture);
}
