//! Sharded execution of the incremental engine: rule state spread
//! across worker threads, one deterministic merged event stream.
//!
//! # Why rules shard cleanly
//!
//! Every rule's incremental state (match memos, blocking partition,
//! per-block assertions) is independent of every other rule's — the only
//! cross-rule structures are the [`ViolationLedger`] (which refcounts
//! identical violations asserted by different rules) and the
//! [`DriftMonitor`]. So the partitioning is rule-granular: each worker
//! owns a disjoint subset of the seeded rules and processes every op for
//! exactly those rules.
//!
//! # The shard/merge protocol
//!
//! A batch of [`RowOp`]s is validated and interned **once** by the
//! coordinator (one `ValuePool` lock acquisition per record via
//! `intern_value_batch`), then fanned out over bounded channels as one
//! shared `Arc` of id-ops. Each worker applies the ops *in order* to its
//! own id-table replica (4-byte cells; the string bytes live once, in
//! the process-global pool, whose `resolve` is lock-free) and runs its
//! rules' `process_insert`/`process_removal`
//! delta core against it — the exact code the single-threaded engine
//! runs, against an identical table state at every op. Workers return,
//! per op and per phase (removal, then insert), the deltas each of their
//! rules produced.
//!
//! The coordinator merges: for each op, phase by phase, deltas are
//! ordered by **global rule index** and replayed into the one ledger and
//! the one drift monitor. That replay performs the same ledger calls in
//! the same order as `StreamEngine` would, so cross-rule refcount
//! dedup, event contents, and event *order* are bit-for-bit identical —
//! the determinism contract `tests/shard_equivalence.rs` pins down for
//! 1/2/4 shards against the single-threaded engine.
//!
//! # Placement and rebalancing
//!
//! Rules are assigned round-robin in descending order of an a-priori
//! weight (variable tuples maintain whole block partitions and weigh
//! more than constant tuples). Once real data has flowed,
//! [`ShardedEngine::rebalance`] redistributes by *observed* per-rule
//! block counts: workers hand their rule states back over the channel,
//! the coordinator re-sorts and re-installs them — possible precisely
//! because rule state is self-contained and every worker's table replica
//! is identical.
//!
//! # The epoch barrier
//!
//! Tombstone compaction is the one maneuver that rewrites `RowId`s, so
//! it runs as a coordinated barrier ([`ShardedEngine::compact`]): the
//! coordinator compacts its canonical table, broadcasts the resulting
//! `RowIdRemap`, and every worker compacts its own replica
//! (bit-identical, asserted in debug builds) and remaps its rules'
//! partitions and asserted violations in place before acknowledging.
//! No op batch ever straddles two id spaces — batches are validated
//! against one epoch and the auto-trigger
//! (`StreamConfig::compact_ratio`) is checked only between fan-outs, at
//! the same boundaries the single-threaded engine uses, which is what
//! keeps the equivalence contract alive across compactions.

use crate::drift::{DriftMonitor, DriftReport, RuleHealth};
use crate::engine::{
    apply_deltas, should_compact, validate_shapes, CompactionStats, CompiledRule, Delta, DeltaSink,
    OpShape, RuleState, StreamConfig,
};
use anmat_core::{LedgerEvent, Pfd, ViolationLedger};
use anmat_obs as obs;
use anmat_table::{RowId, RowIdRemap, RowOp, Schema, Table, TableError, Value, ValueId, ValuePool};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A [`RowOp`] with its cells already interned — what crosses the
/// channel (ids are `Copy`; no string is cloned into a worker).
#[derive(Debug, Clone)]
enum IdOp {
    Insert(Vec<ValueId>),
    Delete(RowId),
    Update(RowId, Vec<ValueId>),
}

impl IdOp {
    fn shape(&self) -> OpShape {
        match self {
            IdOp::Insert(cells) => OpShape::Insert { arity: cells.len() },
            IdOp::Delete(row) => OpShape::Delete { row: *row },
            IdOp::Update(row, cells) => OpShape::Update {
                row: *row,
                arity: cells.len(),
            },
        }
    }
}

/// Deltas one rule produced for one phase of one op.
struct RuleDeltas {
    rule: usize,
    matched: bool,
    created: usize,
    retracted: usize,
    deltas: Vec<Delta>,
}

/// What one shard produced for one op: the removal phase (deletes and
/// the first half of updates), then the insert phase.
#[derive(Default)]
struct OpOutcome {
    removal: Vec<RuleDeltas>,
    insert: Vec<RuleDeltas>,
}

/// Per-rule load/observability figures a worker reports on request.
struct RuleStats {
    rule: usize,
    blocks: usize,
    pattern_evals: usize,
    pattern_lookups: usize,
}

enum WorkerMsg {
    Batch(Arc<Vec<IdOp>>),
    Stats,
    Extract,
    Install(Vec<(usize, RuleState)>),
    /// The epoch barrier: compact the replica and remap rule state with
    /// the coordinator's broadcast remap, then acknowledge.
    Compact(Arc<RowIdRemap>),
}

enum WorkerReply {
    Batch(Vec<OpOutcome>),
    Stats(Vec<RuleStats>),
    Extracted(Vec<(usize, RuleState)>),
    Installed,
    Compacted,
}

/// One worker thread's state: its table replica and its rule subset
/// (kept sorted by global rule index so per-op outcomes come out
/// pre-ordered).
struct Worker {
    table: Table,
    rules: Vec<(usize, RuleState)>,
    /// Per-shard occupancy of the inbound bounded channel — the
    /// coordinator raises it on send, this worker lowers it on dequeue.
    queue_depth: &'static obs::Gauge,
    /// Per-shard batches processed and time spent processing them.
    batches: &'static obs::Counter,
    busy_ns: &'static obs::Histogram,
}

impl Worker {
    fn run(mut self, rx: &Receiver<WorkerMsg>, tx: &SyncSender<WorkerReply>) {
        while let Ok(msg) = rx.recv() {
            self.queue_depth.sub(1);
            let reply = match msg {
                WorkerMsg::Batch(ops) => {
                    self.batches.incr();
                    let _busy = obs::Span::start(self.busy_ns);
                    WorkerReply::Batch(self.process_batch(&ops))
                }
                WorkerMsg::Stats => WorkerReply::Stats(
                    self.rules
                        .iter()
                        .map(|(rule, state)| RuleStats {
                            rule: *rule,
                            blocks: state.block_count(),
                            pattern_evals: state.pattern_evals(),
                            pattern_lookups: state.pattern_lookups(),
                        })
                        .collect(),
                ),
                WorkerMsg::Extract => WorkerReply::Extracted(std::mem::take(&mut self.rules)),
                WorkerMsg::Install(mut rules) => {
                    rules.sort_by_key(|(rule, _)| *rule);
                    self.rules = rules;
                    WorkerReply::Installed
                }
                WorkerMsg::Compact(remap) => {
                    // The replica is op-for-op identical to the
                    // coordinator's table, so compacting it locally
                    // reproduces the broadcast remap exactly — asserted
                    // in debug builds, which the equivalence proptests
                    // run under.
                    let local = self.table.compact();
                    debug_assert_eq!(
                        &local,
                        remap.as_ref(),
                        "worker replica diverged from the coordinator's table"
                    );
                    for (_, state) in &mut self.rules {
                        state.apply_remap(&remap);
                    }
                    WorkerReply::Compacted
                }
            };
            if tx.send(reply).is_err() {
                break; // coordinator gone
            }
        }
    }

    fn process_batch(&mut self, ops: &[IdOp]) -> Vec<OpOutcome> {
        // Batch-classify each owned rule's caches over the batch's
        // insert/update rows before any per-row work (count-neutral; see
        // `RuleState::prime_batch`).
        let arriving: Vec<&[ValueId]> = ops
            .iter()
            .filter_map(|op| match op {
                IdOp::Insert(cells) | IdOp::Update(_, cells) => Some(cells.as_slice()),
                IdOp::Delete(_) => None,
            })
            .collect();
        for (_, state) in &mut self.rules {
            state.prime_batch(&arriving);
        }
        ops.iter()
            .map(|op| {
                let mut outcome = OpOutcome::default();
                match op {
                    IdOp::Insert(cells) => {
                        let row = self
                            .table
                            .push_id_row(cells.clone())
                            .expect("coordinator validated the batch");
                        outcome.insert = self.phase(row, false);
                    }
                    IdOp::Delete(row) => {
                        // Removal runs against the pre-delete cells, as
                        // in the single-threaded engine.
                        outcome.removal = self.phase(*row, true);
                        self.table
                            .delete_row(*row)
                            .expect("coordinator validated the batch");
                    }
                    IdOp::Update(row, cells) => {
                        outcome.removal = self.phase(*row, true);
                        self.table
                            .update_id_row(*row, cells.clone())
                            .expect("coordinator validated the batch");
                        outcome.insert = self.phase(*row, false);
                    }
                }
                outcome
            })
            .collect()
    }

    /// Run one phase of one op for every owned rule, in ascending global
    /// rule order. No-op entries (unmatched, no deltas) are dropped —
    /// they would be drift no-ops at the merge anyway.
    fn phase(&mut self, row: RowId, removal: bool) -> Vec<RuleDeltas> {
        let mut out = Vec::new();
        for (rule, state) in &mut self.rules {
            let mut sink = DeltaSink::default();
            let matched = if removal {
                state.process_removal(&self.table, row, &mut sink)
            } else {
                state.process_insert(&self.table, row, &mut sink)
            };
            if matched || sink.created > 0 || sink.retracted > 0 || !sink.deltas.is_empty() {
                out.push(RuleDeltas {
                    rule: *rule,
                    matched,
                    created: sink.created,
                    retracted: sink.retracted,
                    deltas: sink.deltas,
                });
            }
        }
        out
    }
}

struct WorkerHandle {
    tx: Option<SyncSender<WorkerMsg>>,
    rx: Receiver<WorkerReply>,
    thread: Option<JoinHandle<()>>,
    /// The same per-shard gauge the worker holds — raised here on send,
    /// lowered worker-side on dequeue, so its level is the number of
    /// messages sitting in (or blocked on) the bounded channel.
    queue_depth: &'static obs::Gauge,
}

impl WorkerHandle {
    fn send(&self, msg: WorkerMsg) {
        self.queue_depth.add(1);
        self.tx
            .as_ref()
            .expect("worker channel open")
            .send(msg)
            .expect("worker thread alive");
    }

    fn recv(&self) -> WorkerReply {
        self.rx.recv().expect("worker thread alive")
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // Closing the channel ends the worker's recv loop.
        self.tx.take();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The sharded incremental engine: same semantics as [`StreamEngine`]
/// (bit-for-bit, including event order), rule processing spread over
/// worker threads. See the module docs for the shard/merge protocol.
///
/// [`StreamEngine`]: crate::StreamEngine
pub struct ShardedEngine {
    /// The coordinator's canonical table (workers hold id replicas).
    table: Table,
    rules: Vec<Pfd>,
    /// Rule index → shard index.
    assignment: Vec<usize>,
    workers: Vec<WorkerHandle>,
    ledger: ViolationLedger,
    drift: DriftMonitor,
    /// Auto-compaction threshold (see [`StreamConfig::compact_ratio`]).
    compact_ratio: f64,
    compaction: CompactionStats,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.workers.len())
            .field("rules", &self.rules.len())
            .field("rows", &self.table.row_count())
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// An engine over `schema` with `shards` workers, default
    /// thresholds. The worker count is clamped to `[1, rule count]` —
    /// rule-granular sharding cannot use more workers than rules.
    #[must_use]
    pub fn new(schema: Schema, rules: Vec<Pfd>, shards: usize) -> ShardedEngine {
        let config = StreamConfig {
            shards,
            ..StreamConfig::default()
        };
        ShardedEngine::with_config(schema, rules, config)
    }

    /// An engine with explicit thresholds; `config.shards` sets the
    /// worker count.
    #[must_use]
    pub fn with_config(schema: Schema, rules: Vec<Pfd>, config: StreamConfig) -> ShardedEngine {
        let shards = config.shards.clamp(1, rules.len().max(1));
        let assignment = ShardedEngine::assign(&rules, shards);
        let drift = DriftMonitor::new(rules.len(), config.min_support, config.max_violation_ratio);
        // Compile every rule's programs exactly once, on the coordinator;
        // workers seed around the shared `Arc`s, so `pattern.compile_ns`
        // records one compile per rule regardless of the shard count.
        let compiled: Vec<CompiledRule> = rules.iter().map(CompiledRule::compile).collect();
        let workers = (0..shards)
            .map(|shard| {
                let states: Vec<(usize, RuleState)> = rules
                    .iter()
                    .zip(&compiled)
                    .enumerate()
                    .filter(|(rule, _)| assignment[*rule] == shard)
                    .map(|(rule, (pfd, programs))| {
                        (
                            rule,
                            RuleState::seed_shared(
                                pfd.clone(),
                                &schema,
                                config.pattern_engine,
                                programs,
                            ),
                        )
                    })
                    .collect();
                // Per-shard metric instances; the registered handles are
                // `&'static`, so they cross the thread boundary freely.
                let queue_depth = obs::gauge(&format!("shard.{shard}.queue_depth"));
                let worker = Worker {
                    table: Table::empty(schema.clone()),
                    rules: states,
                    queue_depth,
                    batches: obs::counter(&format!("shard.{shard}.batches")),
                    busy_ns: obs::histogram(&format!("shard.{shard}.busy_ns")),
                };
                // Bounded both ways: one in-flight batch per worker.
                let (msg_tx, msg_rx) = sync_channel::<WorkerMsg>(1);
                let (reply_tx, reply_rx) = sync_channel::<WorkerReply>(1);
                let thread = std::thread::Builder::new()
                    .name(format!("anmat-shard-{shard}"))
                    .spawn(move || worker.run(&msg_rx, &reply_tx))
                    .expect("spawn shard worker");
                WorkerHandle {
                    tx: Some(msg_tx),
                    rx: reply_rx,
                    thread: Some(thread),
                    queue_depth,
                }
            })
            .collect();
        ShardedEngine {
            table: Table::empty(schema),
            rules,
            assignment,
            workers,
            ledger: ViolationLedger::new(),
            drift,
            compact_ratio: config.compact_ratio,
            compaction: CompactionStats::default(),
        }
    }

    /// Run one coordinated compaction epoch across the whole engine —
    /// the sharded half of the remap protocol:
    ///
    /// 1. the coordinator compacts its canonical table, producing the
    ///    epoch-stamped [`RowIdRemap`];
    /// 2. the remap is broadcast; every worker compacts its own 4-byte
    ///    replica (bit-identical by construction) and remaps its rules'
    ///    partitions and asserted block context in place;
    /// 3. the coordinator rewrites the ledger's live violations and
    ///    adopts the epoch, then waits for every worker's acknowledgment
    ///    — a full barrier, so no op batch ever straddles two id spaces.
    ///
    /// Like the single-threaded [`StreamEngine::compact`], the pass is
    /// silent (no events, no drift movement, no pattern re-evaluation),
    /// which is what keeps the shard-equivalence contract intact across
    /// compactions triggered at identical batch boundaries.
    ///
    /// [`StreamEngine::compact`]: crate::StreamEngine::compact
    pub fn compact(&mut self) -> RowIdRemap {
        obs::counter!("shard.epoch_barriers").incr();
        let remap = Arc::new(self.table.compact());
        for worker in &self.workers {
            worker.send(WorkerMsg::Compact(Arc::clone(&remap)));
        }
        // The coordinator's share of the epoch overlaps the workers'.
        self.ledger.remap(&remap);
        self.compaction.epochs += 1;
        self.compaction.reclaimed_slots += remap.reclaimed();
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Compacted => {}
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
        RowIdRemap::clone(&remap)
    }

    /// Auto-compaction hook, checked after every fanned-out batch — the
    /// same `should_compact` predicate at the same boundaries as the
    /// single-threaded engine, so both compact at identical points.
    fn maybe_compact(&mut self) {
        if should_compact(
            self.compact_ratio,
            self.table.row_count(),
            self.table.live_rows(),
        ) {
            self.compact();
        }
    }

    /// The engine's compaction epoch (0 until the first compaction).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.table.epoch()
    }

    /// Lifetime compaction counters (epochs run, slots reclaimed).
    #[must_use]
    pub fn compaction_stats(&self) -> CompactionStats {
        self.compaction
    }

    /// Round-robin over rules sorted by descending weight (ties by
    /// index): the heaviest rules land on distinct shards first.
    fn assign_by_weight(weights: &[usize], shards: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by_key(|&rule| (std::cmp::Reverse(weights[rule]), rule));
        let mut assignment = vec![0; weights.len()];
        for (pos, &rule) in order.iter().enumerate() {
            assignment[rule] = pos % shards;
        }
        assignment
    }

    fn assign(rules: &[Pfd], shards: usize) -> Vec<usize> {
        let weights: Vec<usize> = rules.iter().map(RuleState::estimated_weight).collect();
        ShardedEngine::assign_by_weight(&weights, shards)
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// The shard a rule currently lives on.
    #[must_use]
    pub fn rule_shard(&self, rule: usize) -> usize {
        self.assignment[rule]
    }

    // ── ingest entry points (same surface as `StreamEngine`) ─────────

    /// Ingest one row; returns the violation events it caused, in
    /// rule/tableau order — identical to the single-threaded engine.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<Vec<LedgerEvent>, TableError> {
        self.apply([RowOp::Insert(row)])
    }

    /// Ingest one row of already-interned ids (clone-free fan-out).
    pub fn push_id_row(&mut self, row: Vec<ValueId>) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(vec![IdOp::Insert(row)])
    }

    /// Ingest a batch of rows; returns the concatenated events. Atomic
    /// with respect to errors: the whole batch is validated before any
    /// row is ingested.
    pub fn push_batch(
        &mut self,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.apply(rows.into_iter().map(RowOp::Insert))
    }

    /// Ingest a batch of already-interned rows; atomic like
    /// [`ShardedEngine::push_batch`].
    pub fn push_id_batch(
        &mut self,
        rows: impl IntoIterator<Item = Vec<ValueId>>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(rows.into_iter().map(IdOp::Insert).collect())
    }

    /// Delete one live row; same contract as the single-threaded
    /// engine's `delete_row`.
    pub fn delete_row(&mut self, row: RowId) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(vec![IdOp::Delete(row)])
    }

    /// Update one live row in place (delete + insert fused on one slot).
    pub fn update_row(
        &mut self,
        row: RowId,
        cells: Vec<Value>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.apply([RowOp::Update(row, cells)])
    }

    /// Update one live row with already-interned ids.
    pub fn update_id_row(
        &mut self,
        row: RowId,
        cells: Vec<ValueId>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(vec![IdOp::Update(row, cells)])
    }

    /// Apply a batch of [`RowOp`]s; returns the concatenated events.
    /// Atomic with respect to errors (validated against a simulation of
    /// the live set before any op executes or is fanned out).
    pub fn apply(
        &mut self,
        ops: impl IntoIterator<Item = RowOp>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        let ops: Vec<RowOp> = ops.into_iter().collect();
        validate_shapes(&self.table, ops.iter().map(OpShape::of))?;
        // Intern every record once, coordinator-side (one pool lock
        // acquisition per record); workers only ever see `Copy` ids.
        let id_ops: Vec<IdOp> = ops
            .into_iter()
            .map(|op| match op {
                RowOp::Insert(cells) => IdOp::Insert(ValuePool::intern_value_batch(&cells)),
                RowOp::Delete(row) => IdOp::Delete(row),
                RowOp::Update(row, cells) => {
                    IdOp::Update(row, ValuePool::intern_value_batch(&cells))
                }
            })
            .collect();
        self.fan_out(id_ops)
    }

    /// Replay an existing table's *live* rows in row order (clone-free:
    /// rows are carried over as interned ids, in one fan-out batch).
    pub fn replay_table(&mut self, table: &Table) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(
            table
                .iter_live()
                .map(|r| IdOp::Insert(table.row_ids(r)))
                .collect(),
        )
    }

    fn run_id_ops(&mut self, id_ops: Vec<IdOp>) -> Result<Vec<LedgerEvent>, TableError> {
        validate_shapes(&self.table, id_ops.iter().map(IdOp::shape))?;
        self.fan_out(id_ops)
    }

    /// Fan a validated id-op batch out to every worker, apply it to the
    /// canonical table while they process, then merge the per-shard
    /// outcomes into the deterministic event stream.
    fn fan_out(&mut self, id_ops: Vec<IdOp>) -> Result<Vec<LedgerEvent>, TableError> {
        let op_count = id_ops.len();
        if op_count == 0 {
            return Ok(Vec::new());
        }
        obs::counter!("shard.batches").incr();
        obs::counter!("engine.ops").add(op_count as u64);
        let fanout = obs::span!("shard.fanout_ns");
        let batch = Arc::new(id_ops);
        for worker in &self.workers {
            worker.send(WorkerMsg::Batch(Arc::clone(&batch)));
        }
        // The coordinator's replica advances while the workers chew.
        for op in batch.iter() {
            match op {
                IdOp::Insert(cells) => {
                    self.table
                        .push_id_row(cells.clone())
                        .expect("batch pre-validated");
                }
                IdOp::Delete(row) => {
                    self.table.delete_row(*row).expect("batch pre-validated");
                }
                IdOp::Update(row, cells) => {
                    self.table
                        .update_id_row(*row, cells.clone())
                        .expect("batch pre-validated");
                }
            }
        }
        drop(fanout);
        // Merge wait: how long the coordinator sits blocked on worker
        // replies after finishing its own share of the batch.
        let replies: Vec<Vec<OpOutcome>> = {
            let _wait = obs::span!("shard.merge_wait_ns");
            self.workers
                .iter()
                .map(|worker| match worker.recv() {
                    WorkerReply::Batch(outcomes) => outcomes,
                    _ => unreachable!("worker replies in lockstep with requests"),
                })
                .collect()
        };
        let events = self.merge(op_count, replies);
        obs::counter!("engine.events").add(events.len() as u64);
        self.maybe_compact();
        Ok(events)
    }

    /// Merge per-shard outcomes: for each op, removal phase then insert
    /// phase, deltas ordered by global rule index — the same ledger call
    /// sequence the single-threaded engine performs, hence the same
    /// events in the same order.
    fn merge(&mut self, op_count: usize, mut replies: Vec<Vec<OpOutcome>>) -> Vec<LedgerEvent> {
        let _merge = obs::span!("shard.merge_ns");
        let mut events = Vec::new();
        for op in 0..op_count {
            let mut removal: Vec<RuleDeltas> = Vec::new();
            let mut insert: Vec<RuleDeltas> = Vec::new();
            for shard in &mut replies {
                let outcome = std::mem::take(&mut shard[op]);
                removal.extend(outcome.removal);
                insert.extend(outcome.insert);
            }
            removal.sort_by_key(|d| d.rule);
            insert.sort_by_key(|d| d.rule);
            for d in removal {
                self.drift.retire(d.rule, d.matched, d.created, d.retracted);
                apply_deltas(&mut self.ledger, d.deltas, &mut events);
            }
            for d in insert {
                self.drift
                    .observe(d.rule, d.matched, d.created, d.retracted);
                apply_deltas(&mut self.ledger, d.deltas, &mut events);
            }
        }
        events
    }

    // ── rebalancing ──────────────────────────────────────────────────

    /// Redistribute rules across shards by *observed* per-rule block
    /// counts (heaviest-first round-robin). Rule states migrate between
    /// workers with their memos and partitions intact; the engine's
    /// observable behaviour is unchanged — only future load placement.
    pub fn rebalance(&mut self) {
        if self.workers.len() <= 1 {
            return;
        }
        obs::counter!("shard.rebalances").incr();
        let stats = self.gather_stats();
        let mut weights = vec![0usize; self.rules.len()];
        for s in &stats {
            // Observed blocks, floored at 1 so data-free rules still
            // spread instead of piling onto shard 0.
            weights[s.rule] = s.blocks.max(1);
        }
        self.assignment = ShardedEngine::assign_by_weight(&weights, self.workers.len());
        // Pull every rule state back, then re-install per the new map.
        for worker in &self.workers {
            worker.send(WorkerMsg::Extract);
        }
        let mut states: Vec<(usize, RuleState)> = Vec::with_capacity(self.rules.len());
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Extracted(mut s) => states.append(&mut s),
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
        for (shard, worker) in self.workers.iter().enumerate() {
            let assigned: Vec<(usize, RuleState)> = states
                .extract_if(.., |(rule, _)| self.assignment[*rule] == shard)
                .collect();
            worker.send(WorkerMsg::Install(assigned));
        }
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Installed => {}
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
    }

    fn gather_stats(&self) -> Vec<RuleStats> {
        for worker in &self.workers {
            worker.send(WorkerMsg::Stats);
        }
        let mut stats = Vec::with_capacity(self.rules.len());
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Stats(mut s) => stats.append(&mut s),
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
        stats
    }

    // ── accessors (same surface as `StreamEngine`) ───────────────────

    /// The ledger of live violations.
    #[must_use]
    pub fn ledger(&self) -> &ViolationLedger {
        &self.ledger
    }

    /// The accumulated (canonical) table.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Row *slots* ingested so far (tombstoned ones included).
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.table.row_count()
    }

    /// Rows currently live (ingested minus deleted).
    #[must_use]
    pub fn live_rows(&self) -> usize {
        self.table.live_rows()
    }

    /// The seeded rules, in index order.
    pub fn rules(&self) -> impl Iterator<Item = &Pfd> {
        self.rules.iter()
    }

    /// Total pattern evaluations across all shards (bounded by
    /// `Σ_tuple distinct(LHS column)`, exactly as in the single-threaded
    /// engine — the memoization guarantee shards per rule).
    #[must_use]
    pub fn pattern_evals(&self) -> usize {
        self.gather_stats().iter().map(|s| s.pattern_evals).sum()
    }

    /// Total memo consultations (hits + misses) across all shards —
    /// together with [`ShardedEngine::pattern_evals`] this yields the
    /// memo hit rate.
    #[must_use]
    pub fn pattern_lookups(&self) -> usize {
        self.gather_stats().iter().map(|s| s.pattern_lookups).sum()
    }

    /// Publish pull-based gauges into the global metrics registry.
    ///
    /// Same contract as [`StreamEngine::publish_metrics`]: cheap enough
    /// for a stats tick but not for a per-batch call — this one does a
    /// full `Stats` round-trip to every worker for the memo and block
    /// figures. No-op while the recorder is disabled.
    ///
    /// [`StreamEngine::publish_metrics`]: crate::StreamEngine::publish_metrics
    pub fn publish_metrics(&self) {
        if !obs::enabled() {
            return;
        }
        let table = self.table.mem_footprint();
        obs::gauge!("table.slots").set(table.total_slots as i64);
        obs::gauge!("table.live").set(table.live_slots as i64);
        obs::gauge!("table.bytes").set(table.bytes as i64);
        let pool = ValuePool::mem_footprint();
        obs::gauge!("pool.bytes").set(pool.bytes as i64);
        obs::gauge!("pool.strings").set(pool.strings as i64);
        obs::gauge!("engine.rules").set(self.rules.len() as i64);
        let stats = self.gather_stats();
        obs::gauge!("engine.blocks").set(stats.iter().map(|s| s.blocks).sum::<usize>() as i64);
        obs::gauge!("memo.evals").set(stats.iter().map(|s| s.pattern_evals).sum::<usize>() as i64);
        obs::gauge!("memo.lookups")
            .set(stats.iter().map(|s| s.pattern_lookups).sum::<usize>() as i64);
        obs::gauge!("ledger.live").set(self.ledger.live_count() as i64);
        obs::gauge!("ledger.created_total").set(self.ledger.created_total() as i64);
        obs::gauge!("ledger.retracted_total").set(self.ledger.retracted_total() as i64);
        obs::gauge!("engine.compaction_epochs").set(self.compaction.epochs as i64);
        obs::gauge!("engine.reclaimed_slots").set(self.compaction.reclaimed_slots as i64);
    }

    /// Streaming health counters for one rule.
    #[must_use]
    pub fn rule_health(&self, rule: usize) -> RuleHealth {
        self.drift.health(rule)
    }

    /// Rules whose live confidence decayed below the discovery
    /// threshold, in rule-index order — the same explicit ordering
    /// contract as the single-threaded engine's `drift_report` (drift
    /// state is coordinator-owned, so shard completion order cannot
    /// reach it; the sort pins the contract against future gathering
    /// changes).
    #[must_use]
    pub fn drift_report(&self) -> Vec<DriftReport> {
        let mut reports: Vec<DriftReport> = self
            .rules
            .iter()
            .enumerate()
            .filter_map(|(i, pfd)| self.drift.judge(i, pfd.embedded_fd()))
            .collect();
        reports.sort_by_key(|r| r.rule);
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_core::PatternTuple;

    fn schema() -> Schema {
        Schema::new(["zip", "city"]).unwrap()
    }

    fn zip_variable_pfd() -> Pfd {
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::variable("[\\D{3}]\\D{2}".parse().unwrap())],
        )
    }

    #[test]
    fn assignment_spreads_heaviest_first() {
        let weights = [1, 4, 4, 1, 2];
        let a = ShardedEngine::assign_by_weight(&weights, 2);
        // Sorted by weight desc, index asc: 1, 2, 4, 0, 3 → shards
        // 0, 1, 0, 1, 0.
        assert_eq!(a, vec![1, 0, 1, 0, 0]);
    }

    #[test]
    fn shard_count_clamped_to_rules() {
        let engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 8);
        assert_eq!(engine.shard_count(), 1);
        let engine = ShardedEngine::new(schema(), vec![], 4);
        assert_eq!(engine.shard_count(), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 2);
        let events = engine.apply([]).unwrap();
        assert!(events.is_empty());
        assert_eq!(engine.row_count(), 0);
    }

    #[test]
    fn basic_flow_matches_expectations() {
        let mut engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 2);
        assert!(engine
            .push_row(vec![Value::text("90001"), Value::text("Los Angeles")])
            .unwrap()
            .is_empty());
        let events = engine
            .push_row(vec![Value::text("90002"), Value::text("New York")])
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].is_created());
        assert_eq!(engine.ledger().live_count(), 1);
        assert_eq!(engine.live_rows(), 2);
        // Deleting the flagged row retracts its violation.
        let events = engine.delete_row(1).unwrap();
        assert!(events.iter().any(|e| !e.is_created()));
        assert!(engine.ledger().is_empty());
    }

    #[test]
    fn coordinated_compaction_keeps_the_engine_consistent() {
        let mut engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 2);
        for (i, city) in [
            "Los Angeles",
            "Los Angeles",
            "Los Angeles",
            "New York", // row 3: the minority
        ]
        .iter()
        .enumerate()
        {
            engine
                .push_row(vec![Value::text(format!("9000{i}")), Value::text(*city)])
                .unwrap();
        }
        engine.delete_row(0).unwrap();
        engine.delete_row(1).unwrap();
        let remap = engine.compact();
        assert_eq!(remap.reclaimed(), 2);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.compaction_stats().epochs, 1);
        assert_eq!(engine.row_count(), 2);
        // The flagged row moved 3 → 1 in the ledger.
        assert_eq!(engine.ledger().snapshot()[0].row, 1);
        // Workers and coordinator stayed aligned: ops in the new id
        // space behave, and the retraction carries the new epoch.
        let events = engine.delete_row(1).unwrap();
        assert!(events.iter().any(|e| !e.is_created() && e.epoch == 1));
        assert!(engine.ledger().is_empty());
        assert_eq!(engine.live_rows(), 1);
    }

    #[test]
    fn auto_compaction_is_checked_at_batch_boundaries() {
        let config = StreamConfig {
            shards: 2,
            compact_ratio: 0.4,
            ..StreamConfig::default()
        };
        let mut engine = ShardedEngine::with_config(schema(), vec![zip_variable_pfd()], config);
        let mut ops: Vec<RowOp> = (0..5)
            .map(|i| RowOp::Insert(vec![Value::text(format!("9000{i}")), Value::text("LA")]))
            .collect();
        ops.extend([RowOp::Delete(1), RowOp::Delete(3)]);
        engine.apply(ops).unwrap();
        // 2/5 = 0.4 ≥ 0.4: one epoch at the batch boundary.
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.row_count(), 3);
        assert_eq!(engine.compaction_stats().reclaimed_slots, 2);
    }

    #[test]
    fn invalid_ops_leave_the_engine_untouched() {
        let mut engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 2);
        engine
            .push_row(vec![Value::text("90001"), Value::text("Los Angeles")])
            .unwrap();
        assert!(matches!(
            engine.apply([RowOp::Delete(0), RowOp::Delete(0)]),
            Err(TableError::NoSuchRow { row: 0 })
        ));
        assert_eq!(engine.live_rows(), 1, "nothing applied");
        assert!(matches!(
            engine.push_row(vec![Value::text("just-one")]),
            Err(TableError::ArityMismatch { .. })
        ));
        // The engine still works after rejected batches.
        engine
            .push_row(vec![Value::text("90002"), Value::text("Los Angeles")])
            .unwrap();
        assert_eq!(engine.live_rows(), 2);
    }
}
