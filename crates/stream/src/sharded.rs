//! Sharded execution of the incremental engine: rule (or key-range)
//! state spread across worker threads, one deterministic merged event
//! stream, with optional cross-batch pipelining.
//!
//! # Two sharding axes
//!
//! **Rule-granular** ([`ShardBy::Rule`], the default): every rule's
//! incremental state (match memos, blocking partition, per-block
//! assertions) is independent of every other rule's — the only
//! cross-rule structures are the [`ViolationLedger`] (which refcounts
//! identical violations asserted by different rules) and the
//! [`DriftMonitor`]. Each worker owns a disjoint subset of the seeded
//! rules and processes every op for exactly those rules. Zero routing
//! cost, but one heavy rule is capped at one core.
//!
//! **Key-granular** ([`ShardBy::Key`]): every worker holds every rule,
//! but only the tuples whose *blocking key* hashes into the worker's
//! slot range. The key space is split into [`KEY_SLOTS`] hash slots; a
//! slot map (slot → worker) assigns each worker a disjoint key range,
//! so a single rule's blocks spread over all cores. The coordinator
//! derives every blocking key exactly once (memoized per distinct LHS
//! value, so pattern work is still paid once per distinct value) and
//! ships the routes with the batch; workers insert/remove by the
//! pre-derived key and run the identical block-transition code. Because
//! each worker owns whole blocks, block-majority re-derivation stays
//! local — no cross-worker votes, only per-`(rule, tuple)` delta
//! merging on the coordinator.
//!
//! # The shard/merge protocol
//!
//! A batch of [`RowOp`]s is validated and interned **once** by the
//! coordinator (one `ValuePool` lock acquisition per record via
//! `intern_value_batch`), then fanned out over bounded channels as one
//! shared `Arc` of id-ops (plus, in key mode, the per-op route table).
//! Each worker applies the ops *in order* to its own id-table replica
//! (4-byte cells; the string bytes live once, in the process-global
//! pool, whose `resolve` is lock-free) and runs its share of the
//! `process_insert`/`process_removal` delta core against it — the exact
//! code the single-threaded engine runs, against an identical table
//! state at every op. Workers return, per op and per phase (removal,
//! then insert), the deltas they produced, tagged `(rule, tuple)`.
//!
//! The coordinator merges: for each op, phase by phase, deltas are
//! ordered by **(global rule index, tableau tuple index)**, each rule's
//! partial drift tallies are folded into one [`DriftDelta`]
//! (`matched` ORs, counts add) and applied once, then the rule's deltas
//! replay into the one ledger. That is the same ledger/drift call
//! sequence `StreamEngine` performs, so cross-rule refcount dedup,
//! event contents, and event *order* are bit-for-bit identical — the
//! determinism contract `tests/shard_equivalence.rs` pins down for
//! 1/2/4 shards on both axes against the single-threaded engine.
//!
//! # Cross-batch pipelining
//!
//! With `StreamConfig::run_ahead = N`, [`ShardedEngine::submit`] fans a
//! batch out and returns without waiting: up to `N` batches may be in
//! flight (fanned out but unmerged) while workers chew. Every batch is
//! tagged with a monotone **epoch sequence number** at submission;
//! replies carry it back, and the coordinator merges strictly in
//! submission order ([`BatchEvents`] is the per-batch unit), so the
//! event stream is byte-identical to `run_ahead = 0` — pipelining
//! changes *when* the merge happens, never its order. Barriers
//! (compaction, rebalance, stats gathering) drain the window first.
//! [`ShardedEngine::apply`] remains the synchronous path: submit, drain,
//! concatenate.
//!
//! # Placement and rebalancing
//!
//! In rule mode, rules are assigned round-robin in descending order of
//! an a-priori weight; [`ShardedEngine::rebalance`] redistributes by
//! *observed* per-rule block counts, migrating whole rule states. In
//! key mode the same call takes a per-slot block census and reassigns
//! hash slots to workers heaviest-first; workers extract the per-key
//! state (memo entries, blocks with their asserted context) for slots
//! they lost and the coordinator re-installs it on the new owners.
//! Either way the engine's observable behaviour is unchanged — only
//! future load placement.
//!
//! # The epoch barrier
//!
//! Tombstone compaction is the one maneuver that rewrites `RowId`s, so
//! it runs as a coordinated barrier ([`ShardedEngine::compact`]): the
//! pipeline drains, the coordinator compacts its canonical table,
//! broadcasts the resulting `RowIdRemap`, and every worker compacts its
//! own replica (bit-identical, asserted in debug builds) and remaps its
//! rules' partitions and asserted violations in place before
//! acknowledging. No op batch ever straddles two id spaces — the
//! auto-trigger (`StreamConfig::compact_ratio`) is checked after every
//! *submitted* batch against the canonical table (which the coordinator
//! advances at submission), the same boundaries the single-threaded
//! engine uses, which is what keeps the equivalence contract alive
//! across compactions.

use crate::drift::{DriftDelta, DriftMonitor, DriftReport, RuleHealth};
use crate::engine::{
    apply_deltas, should_compact, validate_shapes, CompactionStats, CompiledRule, Delta, DeltaSink,
    EngineSnapshot, OpShape, RuleState, ShardBy, StreamConfig, TupleDeltas, TupleKeySlice,
};
use anmat_core::{LedgerEvent, Pfd, RhsCell, ViolationLedger};
use anmat_index::BlockingPartition;
use anmat_obs as obs;
use anmat_pattern::PatternEngine;
use anmat_table::{
    ReclaimStats, RowId, RowIdRemap, RowOp, Schema, Table, TableError, Value, ValueId, ValuePool,
};
use fxhash::FxHashSet;
use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Number of hash slots the key space is split into under
/// [`ShardBy::Key`]. Slots are the unit of ownership and migration:
/// each worker owns the slots the slot map assigns it, and rebalancing
/// moves whole slots. 128 slots give fine-grained balancing headroom
/// for any plausible worker count while keeping the census and the
/// remap broadcast tiny.
pub const KEY_SLOTS: usize = 128;

/// The hash slot a key (`ValueId::raw`) falls into: a Fibonacci
/// multiplicative hash taking the top 7 bits. Interned ids are dense
/// sequential integers, so taking the *high* bits of the product
/// scatters adjacent ids across slots.
fn slot_of_raw(raw: u32) -> usize {
    (raw.wrapping_mul(0x9E37_79B9) >> 25) as usize
}

/// A [`RowOp`] with its cells already interned — what crosses the
/// channel (ids are `Copy`; no string is cloned into a worker).
#[derive(Debug, Clone)]
enum IdOp {
    Insert(Vec<ValueId>),
    Delete(RowId),
    Update(RowId, Vec<ValueId>),
}

impl IdOp {
    fn shape(&self) -> OpShape {
        match self {
            IdOp::Insert(cells) => OpShape::Insert { arity: cells.len() },
            IdOp::Delete(row) => OpShape::Delete { row: *row },
            IdOp::Update(row, cells) => OpShape::Update {
                row: *row,
                arity: cells.len(),
            },
        }
    }
}

/// One fanned-out batch: the interned ops plus (in key mode) the
/// coordinator-derived blocking-key routes, shared as one `Arc` across
/// workers.
///
/// Routes are one `Option<ValueId>` per variable tuple of every rule
/// (tableau order, rule-major — sliced per rule via the shared layout),
/// flattened across ops at a fixed `stride` so the whole batch routes
/// in two allocations: op `k`'s routes for a phase occupy
/// `[k * stride, (k + 1) * stride)`. `None` means the op's LHS was null
/// or did not match the tuple's key extractor: no block forms, every
/// worker skips it. Phases an op never runs (the removal half of an
/// insert, the insert half of a delete) hold `None` padding no worker
/// reads. Both vectors are empty in rule mode.
#[derive(Debug)]
struct RoutedBatch {
    ops: Vec<IdOp>,
    /// The tableau-wide variable-tuple count (`0` in rule mode).
    stride: usize,
    /// Worker count, the per-op stride of the mask vectors.
    shards: usize,
    /// Removal-phase routes, derived from each row's *pre-op* cells
    /// (deletes and the first half of updates).
    removal: Vec<Option<ValueId>>,
    /// Insert-phase routes, derived from the arriving cells.
    insert: Vec<Option<ValueId>>,
    /// Per-`(op, worker)` rule bitmasks (`masks[op * shards + worker]`,
    /// bit `r` = worker has owned work for rule `r` this phase): the
    /// coordinator already hashes every route key, so it decides each
    /// worker's rule visits up front and workers iterate set bits
    /// instead of screening every rule per op. Exact, not conservative —
    /// a set bit is precisely "some per-tuple ownership check inside
    /// `process_*_key` will pass". Empty when more than 64 rules are
    /// live (workers fall back to screening) and in rule mode.
    removal_masks: Vec<u64>,
    insert_masks: Vec<u64>,
}

/// Deltas one rule produced for one phase of one op, tagged with the
/// emitting tableau tuple (always 0 in rule mode, where a rule's whole
/// phase runs on one worker).
struct RuleDeltas {
    rule: usize,
    tuple: usize,
    matched: bool,
    created: usize,
    retracted: usize,
    deltas: Vec<Delta>,
}

/// What one shard produced for one op: the removal phase (deletes and
/// the first half of updates), then the insert phase.
#[derive(Default)]
struct OpOutcome {
    removal: Vec<RuleDeltas>,
    insert: Vec<RuleDeltas>,
}

/// Per-rule load/observability figures a worker reports on request.
struct RuleStats {
    rule: usize,
    blocks: usize,
    pattern_evals: usize,
    pattern_lookups: usize,
}

enum WorkerMsg {
    Batch {
        /// The batch's epoch sequence number; echoed back in the reply
        /// so the coordinator can assert in-order merging.
        seq: u64,
        batch: Arc<RoutedBatch>,
    },
    Stats,
    /// Rule-mode rebalance: hand every rule state back.
    Extract,
    /// Rule-mode rebalance: adopt these rule states.
    Install(Vec<(usize, RuleState)>),
    /// Key-mode census: per-slot block counts.
    SlotCensus,
    /// Key-mode rebalance: adopt the new slot map and hand back all
    /// per-key state for slots this worker no longer owns.
    Rekey(Arc<Vec<usize>>),
    /// Key-mode rebalance: adopt per-key state extracted elsewhere.
    InstallKeys(Vec<(usize, Vec<TupleKeySlice>)>),
    /// The epoch barrier: compact the replica and remap rule state with
    /// the coordinator's broadcast remap, then acknowledge.
    Compact(Arc<RowIdRemap>),
    /// Reclamation phase 1: report which of these candidate ids this
    /// worker's rule state still needs (constant RHS constants, block
    /// keys — see `RuleState::collect_protected`).
    ReclaimScan(Arc<Vec<ValueId>>),
    /// Reclamation phase 2: these ids are about to be freed — purge
    /// every memo/key-cache entry keyed on (or caching) one, then
    /// acknowledge.
    ReclaimApply(Arc<FxHashSet<u32>>),
}

enum WorkerReply {
    Batch {
        seq: u64,
        outcomes: Vec<OpOutcome>,
    },
    Stats(Vec<RuleStats>),
    Extracted(Vec<(usize, RuleState)>),
    Installed,
    SlotCensus(Vec<usize>),
    Rekeyed(Vec<(usize, Vec<TupleKeySlice>)>),
    Compacted,
    /// The subset of a `ReclaimScan`'s candidates this worker vetoes.
    ReclaimVeto(Vec<u32>),
    /// `ReclaimApply` done — caches purged, safe to free the ids.
    Reclaimed,
}

/// One worker thread's state: its table replica and its rule states
/// (a disjoint subset in rule mode; every rule in key mode, restricted
/// to the owned key slots). Kept sorted by global rule index so per-op
/// outcomes come out pre-ordered.
struct Worker {
    table: Table,
    rules: Vec<(usize, RuleState)>,
    shard: usize,
    mode: ShardBy,
    /// Key mode: slot → owning worker. Swapped atomically at rekey
    /// barriers; the coordinator holds the same map for routing census
    /// and migration, never for filtering (ownership is worker-side).
    slot_map: Arc<Vec<usize>>,
    /// Rule → `(offset, len)` into each op's flat route vector (shared,
    /// immutable — the tableau never changes after seeding).
    layout: Arc<Vec<(usize, usize)>>,
    /// Per-shard occupancy of the inbound bounded channel — the
    /// coordinator raises it on send, this worker lowers it on dequeue.
    queue_depth: &'static obs::Gauge,
    /// Per-shard batches processed and time spent processing them.
    batches: &'static obs::Counter,
    busy_ns: &'static obs::Histogram,
}

impl Worker {
    fn run(mut self, rx: &Receiver<WorkerMsg>, tx: &SyncSender<WorkerReply>) {
        while let Ok(msg) = rx.recv() {
            self.queue_depth.sub(1);
            let reply = match msg {
                WorkerMsg::Batch { seq, batch } => {
                    self.batches.incr();
                    let _busy = obs::Span::start(self.busy_ns);
                    WorkerReply::Batch {
                        seq,
                        outcomes: self.process_batch(&batch),
                    }
                }
                WorkerMsg::Stats => WorkerReply::Stats(
                    self.rules
                        .iter()
                        .map(|(rule, state)| RuleStats {
                            rule: *rule,
                            blocks: state.block_count(),
                            pattern_evals: state.pattern_evals(),
                            pattern_lookups: state.pattern_lookups(),
                        })
                        .collect(),
                ),
                WorkerMsg::Extract => WorkerReply::Extracted(std::mem::take(&mut self.rules)),
                WorkerMsg::Install(mut rules) => {
                    rules.sort_by_key(|(rule, _)| *rule);
                    self.rules = rules;
                    WorkerReply::Installed
                }
                WorkerMsg::SlotCensus => {
                    let mut counts = vec![0usize; KEY_SLOTS];
                    for (_, state) in &self.rules {
                        state.for_each_block_key(&mut |key| {
                            counts[slot_of_raw(key.raw())] += 1;
                        });
                    }
                    WorkerReply::SlotCensus(counts)
                }
                WorkerMsg::Rekey(new_map) => {
                    self.slot_map = Arc::clone(&new_map);
                    let me = self.shard;
                    let give_up = move |raw: u32| new_map[slot_of_raw(raw)] != me;
                    let mut moved = Vec::new();
                    for (rule, state) in &mut self.rules {
                        let slices = state.extract_keys(&give_up);
                        if slices.iter().any(|s| !s.is_empty()) {
                            moved.push((*rule, slices));
                        }
                    }
                    WorkerReply::Rekeyed(moved)
                }
                WorkerMsg::InstallKeys(bundle) => {
                    for (rule, slices) in bundle {
                        let (_, state) = self
                            .rules
                            .iter_mut()
                            .find(|(r, _)| *r == rule)
                            .expect("key-mode workers hold every rule");
                        state.install_keys(slices);
                    }
                    WorkerReply::Installed
                }
                WorkerMsg::Compact(remap) => {
                    // The replica is op-for-op identical to the
                    // coordinator's table, so compacting it locally
                    // reproduces the broadcast remap exactly — asserted
                    // in debug builds, which the equivalence proptests
                    // run under.
                    let local = self.table.compact();
                    debug_assert_eq!(
                        &local,
                        remap.as_ref(),
                        "worker replica diverged from the coordinator's table"
                    );
                    for (_, state) in &mut self.rules {
                        state.apply_remap(&remap);
                    }
                    WorkerReply::Compacted
                }
                WorkerMsg::ReclaimScan(candidates) => {
                    // Veto = candidates ∩ this worker's protected ids.
                    // The union of vetoes across workers covers every
                    // protected id of every rule on both axes: rule mode
                    // partitions the rules, key mode partitions each
                    // rule's blocks (constant tuples are replicated, so
                    // their vetoes just repeat).
                    let mut protected = FxHashSet::default();
                    for (_, state) in &self.rules {
                        state.collect_protected(&mut protected);
                    }
                    WorkerReply::ReclaimVeto(
                        candidates
                            .iter()
                            .map(|id| id.raw())
                            .filter(|raw| protected.contains(raw))
                            .collect(),
                    )
                }
                WorkerMsg::ReclaimApply(dead) => {
                    for (_, state) in &mut self.rules {
                        state.purge_values(&dead);
                    }
                    WorkerReply::Reclaimed
                }
            };
            if tx.send(reply).is_err() {
                break; // coordinator gone
            }
        }
    }

    fn process_batch(&mut self, batch: &RoutedBatch) -> Vec<OpOutcome> {
        // Batch-classify each owned rule's caches over the batch's
        // insert/update rows before any per-row work (count-neutral; see
        // `RuleState::prime_batch`). In key mode only the owned LHS ids
        // are primed, so summing worker memos still matches the
        // single-threaded eval count.
        let arriving: Vec<&[ValueId]> = batch
            .ops
            .iter()
            .filter_map(|op| match op {
                IdOp::Insert(cells) | IdOp::Update(_, cells) => Some(cells.as_slice()),
                IdOp::Delete(_) => None,
            })
            .collect();
        match self.mode {
            ShardBy::Rule => {
                for (_, state) in &mut self.rules {
                    state.prime_batch(&arriving);
                }
            }
            ShardBy::Key => {
                let slot_map = &*self.slot_map;
                let me = self.shard;
                let owns = move |id: ValueId| slot_map[slot_of_raw(id.raw())] == me;
                // Mask-gated priming only pays off when the masks
                // actually prune (several workers); at one shard every
                // bit is set and rebuilding the row list per rule would
                // just duplicate `arriving`.
                if batch.insert_masks.is_empty() || batch.shards == 1 {
                    for (_, state) in &mut self.rules {
                        state.prime_batch_key(&arriving, &owns);
                    }
                } else {
                    // Mask-gated priming: a rule with constant tuples
                    // always has its bit set on the LHS id's owner, so
                    // scanning only mask-flagged ops still shows the
                    // owner every row it must classify — the `owns`
                    // filter inside stays exact, evals don't double.
                    let shards = batch.shards;
                    let mut owned: Vec<&[ValueId]> = Vec::with_capacity(arriving.len());
                    for (rule, state) in &mut self.rules {
                        let bit = 1u64 << *rule;
                        owned.clear();
                        owned.extend(batch.ops.iter().enumerate().filter_map(|(op_idx, op)| {
                            if batch.insert_masks[op_idx * shards + me] & bit == 0 {
                                return None;
                            }
                            match op {
                                IdOp::Insert(cells) | IdOp::Update(_, cells) => {
                                    Some(cells.as_slice())
                                }
                                IdOp::Delete(_) => None,
                            }
                        }));
                        state.prime_batch_key(&owned, &owns);
                    }
                }
            }
        }
        batch
            .ops
            .iter()
            .enumerate()
            .map(|(op_idx, op)| {
                let mut outcome = OpOutcome::default();
                match op {
                    IdOp::Insert(cells) => {
                        let row = self
                            .table
                            .push_id_cells(cells)
                            .expect("coordinator validated the batch");
                        outcome.insert = self.phase(batch, op_idx, row, false);
                    }
                    IdOp::Delete(row) => {
                        // Removal runs against the pre-delete cells, as
                        // in the single-threaded engine.
                        outcome.removal = self.phase(batch, op_idx, *row, true);
                        self.table
                            .delete_row(*row)
                            .expect("coordinator validated the batch");
                    }
                    IdOp::Update(row, cells) => {
                        outcome.removal = self.phase(batch, op_idx, *row, true);
                        self.table
                            .update_id_cells(*row, cells)
                            .expect("coordinator validated the batch");
                        outcome.insert = self.phase(batch, op_idx, *row, false);
                    }
                }
                outcome
            })
            .collect()
    }

    /// Run one phase of one op for this worker's share of the rules, in
    /// ascending global rule order. No-op entries (unmatched, no
    /// deltas) are dropped — they would be drift no-ops at the merge
    /// anyway.
    fn phase(
        &mut self,
        batch: &RoutedBatch,
        op_idx: usize,
        row: RowId,
        removal: bool,
    ) -> Vec<RuleDeltas> {
        match self.mode {
            ShardBy::Rule => self.phase_rule(row, removal),
            ShardBy::Key => {
                let start = op_idx * batch.stride;
                let (all, masks) = if removal {
                    (&batch.removal, &batch.removal_masks)
                } else {
                    (&batch.insert, &batch.insert_masks)
                };
                let mask = (!masks.is_empty()).then(|| masks[op_idx * batch.shards + self.shard]);
                self.phase_key(row, &all[start..start + batch.stride], mask, removal)
            }
        }
    }

    fn phase_rule(&mut self, row: RowId, removal: bool) -> Vec<RuleDeltas> {
        let mut out = Vec::new();
        for (rule, state) in &mut self.rules {
            let mut sink = DeltaSink::default();
            let matched = if removal {
                state.process_removal(&self.table, row, &mut sink)
            } else {
                state.process_insert(&self.table, row, &mut sink)
            };
            if matched || sink.created > 0 || sink.retracted > 0 || !sink.deltas.is_empty() {
                out.push(RuleDeltas {
                    rule: *rule,
                    tuple: 0,
                    matched,
                    created: sink.created,
                    retracted: sink.retracted,
                    deltas: sink.deltas,
                });
            }
        }
        out
    }

    /// `mask`: the coordinator's exact rule bitmask for this worker and
    /// phase (`None` when masks are unavailable, i.e. more than 64 live
    /// rules — then every rule is screened worker-side instead).
    fn phase_key(
        &mut self,
        row: RowId,
        routes: &[Option<ValueId>],
        mask: Option<u64>,
        removal: bool,
    ) -> Vec<RuleDeltas> {
        let slot_map = &*self.slot_map;
        let me = self.shard;
        let owns = move |id: ValueId| slot_map[slot_of_raw(id.raw())] == me;
        let layout = &*self.layout;
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        if let Some(mask) = mask {
            // Fast path: visit exactly the rules the coordinator routed
            // here. Key-mode workers hold every rule in index order, so
            // bit `r` addresses `self.rules[r]` directly.
            let mut mask = mask;
            while mask != 0 {
                let rule = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let (r, state) = &mut self.rules[rule];
                debug_assert_eq!(*r, rule, "key-mode workers hold every rule in order");
                let (offset, count) = layout[rule];
                run_rule_key(
                    state,
                    &self.table,
                    rule,
                    row,
                    &routes[offset..offset + count],
                    &owns,
                    removal,
                    &mut scratch,
                    &mut out,
                );
            }
            return out;
        }
        let table = &self.table;
        for (rule, state) in &mut self.rules {
            let (offset, count) = layout[*rule];
            let slice = &routes[offset..offset + count];
            // Ownership screen: on a typical op this worker owns
            // nothing for most rules, so decide that here — from the
            // route slice and one slot probe of the constant-tuple LHS
            // id (exactly the per-tuple checks `process_*_key` would
            // repeat) — before any tableau walk or sink setup.
            let var_owned = slice.iter().any(|r| r.is_some_and(&owns));
            if !var_owned {
                let Some(lhs) = state.lhs_col() else { continue };
                if !state.has_constant_tuples() || !owns(table.cell_id(row, lhs)) {
                    continue;
                }
            }
            run_rule_key(
                state,
                table,
                *rule,
                row,
                slice,
                &owns,
                removal,
                &mut scratch,
                &mut out,
            );
        }
        out
    }
}

/// Fold one op-phase's ownership into the per-worker rule bitmasks
/// (`masks[worker]`, bit `r` = rule `r` has owned work there): every
/// `Some` route key names exactly one owning worker, and a rule with
/// constant tuples additionally routes to the owner of the row's LHS id
/// (`lhs_of` reads the phase-appropriate cells — pre-op for removal,
/// arriving for insert).
fn fill_masks(
    routes: &[Option<ValueId>],
    lhs_of: impl Fn(usize) -> ValueId,
    masks: &mut [u64],
    layout: &[(usize, usize)],
    const_cols: &[Option<usize>],
    slot_map: &[usize],
) {
    for (rule, (offset, count)) in layout.iter().enumerate() {
        for key in routes[*offset..offset + count].iter().flatten() {
            masks[slot_map[slot_of_raw(key.raw())]] |= 1 << rule;
        }
        if let Some(col) = const_cols[rule] {
            masks[slot_map[slot_of_raw(lhs_of(col).raw())]] |= 1 << rule;
        }
    }
}

/// One rule's share of one key-mode phase: run the per-tuple processor
/// and relabel its [`TupleDeltas`] with the global rule index.
#[allow(clippy::too_many_arguments)]
fn run_rule_key(
    state: &mut RuleState,
    table: &Table,
    rule: usize,
    row: RowId,
    routes: &[Option<ValueId>],
    owns: &impl Fn(ValueId) -> bool,
    removal: bool,
    scratch: &mut Vec<TupleDeltas>,
    out: &mut Vec<RuleDeltas>,
) {
    scratch.clear();
    if removal {
        state.process_removal_key(table, row, routes, owns, scratch);
    } else {
        state.process_insert_key(table, row, routes, owns, scratch);
    }
    for td in scratch.drain(..) {
        out.push(RuleDeltas {
            rule,
            tuple: td.tuple,
            matched: td.matched,
            created: td.sink.created,
            retracted: td.sink.retracted,
            deltas: td.sink.deltas,
        });
    }
}

struct WorkerHandle {
    tx: Option<SyncSender<WorkerMsg>>,
    rx: Receiver<WorkerReply>,
    thread: Option<JoinHandle<()>>,
    /// The same per-shard gauge the worker holds — raised here on send,
    /// lowered worker-side on dequeue, so its level is the number of
    /// messages sitting in (or blocked on) the bounded channel.
    queue_depth: &'static obs::Gauge,
}

impl WorkerHandle {
    fn send(&self, msg: WorkerMsg) {
        self.queue_depth.add(1);
        self.tx
            .as_ref()
            .expect("worker channel open")
            .send(msg)
            .expect("worker thread alive");
    }

    fn recv(&self) -> WorkerReply {
        self.rx.recv().expect("worker thread alive")
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // Closing the channel ends the worker's recv loop. The reply
        // channel stays open until after the join, so a worker draining
        // pipelined batches can always deliver its pending replies.
        self.tx.take();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The coordinator's key-derivation front-end for [`ShardBy::Key`]:
/// per rule, the LHS column and one memoized key extractor per variable
/// tuple (sharing the same compiled `Arc`s the worker states hold).
/// Every distinct LHS value's key is derived exactly once here — the
/// workers receive pre-derived routes and never run an extractor, which
/// is what keeps the global eval count identical to single-threaded.
struct Router {
    /// Per rule: LHS column (`None` = the rule's attributes are missing
    /// from this schema, i.e. the rule is inert) and per-variable-tuple
    /// routing memos, tableau order.
    rules: Vec<(Option<usize>, Vec<BlockingPartition>)>,
}

impl Router {
    fn new(
        rules: &[Pfd],
        compiled: &[CompiledRule],
        schema: &Schema,
        engine: PatternEngine,
    ) -> Router {
        let rules = rules
            .iter()
            .zip(compiled)
            .map(|(pfd, programs)| {
                let col = match (
                    schema.index_of(&pfd.lhs_attr),
                    schema.index_of(&pfd.rhs_attr),
                ) {
                    (Some(lhs), Some(_)) => Some(lhs),
                    _ => None,
                };
                let memos = programs
                    .variable_keyers()
                    .into_iter()
                    .map(|keyer| BlockingPartition::with_shared(keyer, engine))
                    .collect();
                (col, memos)
            })
            .collect();
        Router { rules }
    }

    /// Append one route per variable tuple of every rule for a row with
    /// these cells (the insert phase; counting mirrors
    /// `BlockingPartition::insert` exactly, so lookup tallies match the
    /// single-threaded engine).
    fn routes_for_cells(&mut self, cells: &[ValueId], out: &mut Vec<Option<ValueId>>) {
        for (col, memos) in &mut self.rules {
            match col {
                Some(c) => {
                    let lhs = cells[*c];
                    for memo in memos.iter_mut() {
                        out.push(memo.key_for(lhs));
                    }
                }
                None => out.extend(std::iter::repeat_n(None, memos.len())),
            }
        }
    }

    /// [`Router::routes_for_cells`] for a live row's current cells (the
    /// removal phase — pre-op state, as the single-threaded engine
    /// consults it).
    fn routes_for_row(&mut self, table: &Table, row: RowId, out: &mut Vec<Option<ValueId>>) {
        for (col, memos) in &mut self.rules {
            match col {
                Some(c) => {
                    let lhs = table.cell_id(row, *c);
                    for memo in memos.iter_mut() {
                        out.push(memo.key_for(lhs));
                    }
                }
                None => out.extend(std::iter::repeat_n(None, memos.len())),
            }
        }
    }

    /// Drop every routing-memo entry keyed on (or caching) a dead id —
    /// the coordinator's share of a reclamation barrier. The routing
    /// memos are the key-mode counterpart of the workers' key caches:
    /// a stale entry would route a recycled id's rows into the wrong
    /// block.
    fn purge(&mut self, dead: &FxHashSet<u32>) {
        for (_, memos) in &mut self.rules {
            for memo in memos.iter_mut() {
                memo.purge_cached_keys(|id| dead.contains(&id.raw()));
            }
        }
    }

    fn key_evals(&self) -> usize {
        self.rules
            .iter()
            .flat_map(|(_, memos)| memos.iter().map(BlockingPartition::key_evals))
            .sum()
    }

    fn key_lookups(&self) -> usize {
        self.rules
            .iter()
            .flat_map(|(_, memos)| memos.iter().map(BlockingPartition::key_lookups))
            .sum()
    }
}

/// The merged event stream of one submitted batch, tagged with the
/// batch's epoch sequence number (monotone from 0, one per submission
/// — empty batches included). Batches complete strictly in `seq` order.
#[derive(Debug)]
pub struct BatchEvents {
    /// The batch's submission sequence number.
    pub seq: u64,
    /// The batch's violation events, in rule/tableau order — identical
    /// to what the single-threaded engine would have returned.
    pub events: Vec<LedgerEvent>,
}

/// The sharded incremental engine: same semantics as [`StreamEngine`]
/// (bit-for-bit, including event order), rule processing spread over
/// worker threads on either the rule or the blocking-key axis, with
/// optional cross-batch pipelining. See the module docs for the
/// shard/merge protocol.
///
/// [`StreamEngine`]: crate::StreamEngine
pub struct ShardedEngine {
    /// The coordinator's canonical table (workers hold id replicas).
    table: Table,
    rules: Vec<Pfd>,
    /// Rule index → shard index (rule mode; all zeros in key mode).
    assignment: Vec<usize>,
    workers: Vec<WorkerHandle>,
    ledger: ViolationLedger,
    drift: DriftMonitor,
    /// Auto-compaction threshold (see [`StreamConfig::compact_ratio`]).
    compact_ratio: f64,
    compaction: CompactionStats,
    shard_by: ShardBy,
    /// Pipelining window: how many submitted batches may be unmerged.
    run_ahead: usize,
    /// Next batch's epoch sequence number.
    next_seq: u64,
    /// Submitted-but-unmerged batches, oldest first: `(seq, op count)`.
    in_flight: VecDeque<(u64, usize)>,
    /// Merged batches not yet handed to the caller.
    completed: Vec<BatchEvents>,
    /// Key mode only: the coordinator's key-derivation memos.
    router: Option<Router>,
    /// Tableau-wide variable-tuple count — the per-op stride of the
    /// flat route vectors (`0` in rule mode, where no routes ship).
    route_stride: usize,
    /// Rule → `(offset, len)` into the per-op route slice (the same
    /// `Arc` every worker holds).
    layout: Arc<Vec<(usize, usize)>>,
    /// Key mode: per rule, the LHS column if the rule has constant
    /// tuples (whose key-mode owner is decided by the row's LHS id) —
    /// what the coordinator needs to finish each worker's rule bitmask.
    const_cols: Vec<Option<usize>>,
    /// Key mode: hash slot → owning worker (also held by every worker).
    slot_map: Arc<Vec<usize>>,
    /// Epoch-tied string reclamation (see [`StreamConfig::reclaim`]).
    reclaim: bool,
    /// Lifetime pool reclamation by this engine's sweeps.
    reclaim_stats: ReclaimStats,
    /// Snapshot pin — see `StreamEngine::snap_pin`.
    snap_pin: Arc<()>,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.workers.len())
            .field("shard_by", &self.shard_by)
            .field("run_ahead", &self.run_ahead)
            .field("rules", &self.rules.len())
            .field("rows", &self.table.row_count())
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// An engine over `schema` with `shards` workers, default
    /// thresholds (rule-granular, no pipelining). The worker count is
    /// clamped to `[1, rule count]` — rule-granular sharding cannot use
    /// more workers than rules.
    #[must_use]
    pub fn new(schema: Schema, rules: Vec<Pfd>, shards: usize) -> ShardedEngine {
        let config = StreamConfig {
            shards,
            ..StreamConfig::default()
        };
        ShardedEngine::with_config(schema, rules, config)
    }

    /// An engine with explicit thresholds; `config.shards` sets the
    /// worker count, `config.shard_by` the partitioning axis, and
    /// `config.run_ahead` the pipelining window. In key mode the worker
    /// count is clamped to `[1, KEY_SLOTS]` instead of the rule count —
    /// a single rule can use every core.
    #[must_use]
    pub fn with_config(schema: Schema, rules: Vec<Pfd>, config: StreamConfig) -> ShardedEngine {
        let shard_by = config.shard_by;
        let shards = match shard_by {
            ShardBy::Rule => config.shards.clamp(1, rules.len().max(1)),
            ShardBy::Key => config.shards.clamp(1, KEY_SLOTS),
        };
        let assignment = match shard_by {
            ShardBy::Rule => ShardedEngine::assign(&rules, shards),
            ShardBy::Key => vec![0; rules.len()],
        };
        // Initial slot map: slots striped round-robin over workers.
        let slot_map: Arc<Vec<usize>> = Arc::new((0..KEY_SLOTS).map(|s| s % shards).collect());
        // Per-rule offsets into the flat per-op route vectors.
        let mut layout = Vec::with_capacity(rules.len());
        let mut offset = 0;
        for pfd in &rules {
            let count = pfd
                .tableau
                .iter()
                .filter(|t| matches!(t.rhs, RhsCell::Wildcard))
                .count();
            layout.push((offset, count));
            offset += count;
        }
        let layout = Arc::new(layout);
        // Mirrors `RuleState::seed_shared`: a rule contributes constant
        // tuples only when both its attributes resolve in the schema.
        let const_cols: Vec<Option<usize>> = rules
            .iter()
            .map(|pfd| {
                match (
                    schema.index_of(&pfd.lhs_attr),
                    schema.index_of(&pfd.rhs_attr),
                ) {
                    (Some(lhs), Some(_)) => pfd
                        .tableau
                        .iter()
                        .any(|t| matches!(t.rhs, RhsCell::Constant(_)))
                        .then_some(lhs),
                    _ => None,
                }
            })
            .collect();
        let drift = DriftMonitor::new(rules.len(), config.min_support, config.max_violation_ratio);
        // Compile every rule's programs exactly once, on the coordinator;
        // workers seed around the shared `Arc`s, so `pattern.compile_ns`
        // records one compile per rule regardless of the shard count.
        let compiled: Vec<CompiledRule> = rules.iter().map(CompiledRule::compile).collect();
        let router = (shard_by == ShardBy::Key)
            .then(|| Router::new(&rules, &compiled, &schema, config.pattern_engine));
        let workers = (0..shards)
            .map(|shard| {
                let states: Vec<(usize, RuleState)> = rules
                    .iter()
                    .zip(&compiled)
                    .enumerate()
                    .filter(|(rule, _)| {
                        // Key mode: every worker holds every rule
                        // (restricted to its key slots at runtime).
                        shard_by == ShardBy::Key || assignment[*rule] == shard
                    })
                    .map(|(rule, (pfd, programs))| {
                        (
                            rule,
                            RuleState::seed_shared(
                                pfd.clone(),
                                &schema,
                                config.pattern_engine,
                                programs,
                            ),
                        )
                    })
                    .collect();
                // Per-shard metric instances; the registered handles are
                // `&'static`, so they cross the thread boundary freely.
                let queue_depth = obs::gauge(&format!("shard.{shard}.queue_depth"));
                let worker = Worker {
                    table: Table::empty(schema.clone()),
                    rules: states,
                    shard,
                    mode: shard_by,
                    slot_map: Arc::clone(&slot_map),
                    layout: Arc::clone(&layout),
                    queue_depth,
                    batches: obs::counter(&format!("shard.{shard}.batches")),
                    busy_ns: obs::histogram(&format!("shard.{shard}.busy_ns")),
                };
                // Bounded both ways, sized to the pipelining window:
                // `run_ahead + 1` in-flight batches per worker.
                let cap = config.run_ahead + 1;
                let (msg_tx, msg_rx) = sync_channel::<WorkerMsg>(cap);
                let (reply_tx, reply_rx) = sync_channel::<WorkerReply>(cap);
                let thread = std::thread::Builder::new()
                    .name(format!("anmat-shard-{shard}"))
                    .spawn(move || worker.run(&msg_rx, &reply_tx))
                    .expect("spawn shard worker");
                WorkerHandle {
                    tx: Some(msg_tx),
                    rx: reply_rx,
                    thread: Some(thread),
                    queue_depth,
                }
            })
            .collect();
        // Refcounting lives on the coordinator's canonical table only:
        // worker replicas are op-for-op content-identical to it, so a
        // cell id with no canonical reference has no replica reference
        // either — one retain/release stream suffices for the whole
        // engine.
        let mut table = Table::empty(schema);
        if config.reclaim {
            table.enable_refcounts();
        }
        ShardedEngine {
            table,
            rules,
            assignment,
            workers,
            ledger: ViolationLedger::new(),
            drift,
            compact_ratio: config.compact_ratio,
            compaction: CompactionStats::default(),
            shard_by: config.shard_by,
            run_ahead: config.run_ahead,
            next_seq: 0,
            in_flight: VecDeque::new(),
            completed: Vec::new(),
            router,
            route_stride: offset,
            layout,
            const_cols,
            slot_map,
            reclaim: config.reclaim,
            reclaim_stats: ReclaimStats::default(),
            snap_pin: Arc::new(()),
        }
    }

    /// Run one coordinated compaction epoch across the whole engine —
    /// the sharded half of the remap protocol:
    ///
    /// 1. the pipeline drains (every in-flight batch merges), so the
    ///    compaction point is a clean batch boundary;
    /// 2. the coordinator compacts its canonical table, producing the
    ///    epoch-stamped [`RowIdRemap`];
    /// 3. the remap is broadcast; every worker compacts its own 4-byte
    ///    replica (bit-identical by construction) and remaps its rules'
    ///    partitions and asserted block context in place;
    /// 4. the coordinator rewrites the ledger's live violations and
    ///    adopts the epoch, then waits for every worker's acknowledgment
    ///    — a full barrier, so no op batch ever straddles two id spaces.
    ///
    /// Like the single-threaded [`StreamEngine::compact`], the pass is
    /// silent (no events, no drift movement, no pattern re-evaluation),
    /// which is what keeps the shard-equivalence contract intact across
    /// compactions triggered at identical batch boundaries.
    ///
    /// [`StreamEngine::compact`]: crate::StreamEngine::compact
    pub fn compact(&mut self) -> RowIdRemap {
        self.drain_in_flight();
        obs::counter!("shard.epoch_barriers").incr();
        let remap = Arc::new(self.table.compact());
        for worker in &self.workers {
            worker.send(WorkerMsg::Compact(Arc::clone(&remap)));
        }
        // The coordinator's share of the epoch overlaps the workers'.
        self.ledger.remap(&remap);
        self.compaction.epochs += 1;
        self.compaction.reclaimed_slots += remap.reclaimed();
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Compacted => {}
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
        self.sweep_reclaimable();
        RowIdRemap::clone(&remap)
    }

    /// The sharded half of the string-reclamation barrier (no-op unless
    /// [`StreamConfig::reclaim`]), layered on the compaction barrier —
    /// by the time it runs the pipeline is drained and every worker has
    /// acknowledged its compaction, so the whole engine sits at one
    /// batch boundary. Two phases over the same channels:
    ///
    /// 1. **scan** — candidates (ids whose canonical refcount hit zero,
    ///    filtered by a recheck) are broadcast; each worker vetoes the
    ///    ones its rule state still needs, exactly mirroring the
    ///    single-threaded protected-set filter (so both engines free
    ///    identical sets at identical boundaries — the determinism
    ///    contract extends to reclamation);
    /// 2. **apply** — the surviving set is broadcast; workers purge
    ///    their memo/key-cache entries, the coordinator purges its
    ///    routing memos, and only then are the ids freed.
    fn sweep_reclaimable(&mut self) {
        if !self.reclaim {
            return;
        }
        if Arc::strong_count(&self.snap_pin) > 1 {
            obs::counter!("pool.sweeps_deferred").incr();
            return;
        }
        let candidates: Vec<ValueId> = self
            .table
            .take_reclaim_candidates()
            .into_iter()
            .filter(|id| ValuePool::refcount(*id) == 0)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let scan = Arc::new(candidates);
        for worker in &self.workers {
            worker.send(WorkerMsg::ReclaimScan(Arc::clone(&scan)));
        }
        let mut vetoed = FxHashSet::default();
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::ReclaimVeto(ids) => vetoed.extend(ids),
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
        let doomed: Vec<ValueId> = scan
            .iter()
            .copied()
            .filter(|id| !vetoed.contains(&id.raw()))
            .collect();
        if doomed.is_empty() {
            return;
        }
        let dead: Arc<FxHashSet<u32>> = Arc::new(doomed.iter().map(|id| id.raw()).collect());
        for worker in &self.workers {
            worker.send(WorkerMsg::ReclaimApply(Arc::clone(&dead)));
        }
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Reclaimed => {}
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
        if let Some(router) = &mut self.router {
            router.purge(&dead);
        }
        let stats = ValuePool::reclaim(doomed);
        self.reclaim_stats.strings += stats.strings;
        self.reclaim_stats.bytes += stats.bytes;
    }

    /// Lifetime pool reclamation this engine's sweeps performed.
    #[must_use]
    pub fn reclaim_stats(&self) -> ReclaimStats {
        self.reclaim_stats
    }

    /// Freeze a consistent copy-on-write view of the engine's canonical
    /// table and ledger — the same [`EngineSnapshot`] the
    /// single-threaded engine produces, captured behind the engine's
    /// pipeline barrier: in-flight batches merge first, so the view
    /// sits at a clean batch boundary. Workers are untouched (their
    /// replicas hold no observable state of their own) and ingest can
    /// resume immediately; reclamation sweeps defer while the snapshot
    /// is alive.
    pub fn snapshot(&mut self) -> EngineSnapshot {
        self.drain_in_flight();
        EngineSnapshot::capture(&self.table, &self.ledger, &self.snap_pin)
    }

    /// Auto-compaction hook, checked after every submitted batch
    /// against the canonical table (which the coordinator advances at
    /// submission) — the same `should_compact` predicate at the same
    /// boundaries as the single-threaded engine, so both compact at
    /// identical points regardless of the pipelining window.
    fn maybe_compact(&mut self) {
        if should_compact(
            self.compact_ratio,
            self.table.row_count(),
            self.table.live_rows(),
        ) {
            self.compact();
        }
    }

    /// The engine's compaction epoch (0 until the first compaction).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.table.epoch()
    }

    /// Lifetime compaction counters (epochs run, slots reclaimed).
    #[must_use]
    pub fn compaction_stats(&self) -> CompactionStats {
        self.compaction
    }

    /// Round-robin over items sorted by descending weight (ties by
    /// index): the heaviest items land on distinct shards first. Used
    /// for both rule assignment (weights per rule) and key-slot
    /// assignment (weights per hash slot).
    fn assign_by_weight(weights: &[usize], shards: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by_key(|&rule| (std::cmp::Reverse(weights[rule]), rule));
        let mut assignment = vec![0; weights.len()];
        for (pos, &rule) in order.iter().enumerate() {
            assignment[rule] = pos % shards;
        }
        assignment
    }

    fn assign(rules: &[Pfd], shards: usize) -> Vec<usize> {
        let weights: Vec<usize> = rules.iter().map(RuleState::estimated_weight).collect();
        ShardedEngine::assign_by_weight(&weights, shards)
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// The work-partitioning axis this engine was built with.
    #[must_use]
    pub fn shard_by(&self) -> ShardBy {
        self.shard_by
    }

    /// The pipelining window (0 = classic per-batch barrier).
    #[must_use]
    pub fn run_ahead(&self) -> usize {
        self.run_ahead
    }

    /// Batches currently in flight (submitted, not yet merged).
    #[must_use]
    pub fn pipeline_depth(&self) -> usize {
        self.in_flight.len()
    }

    /// The shard a rule currently lives on (rule mode; in key mode
    /// every rule lives on every shard and this returns 0).
    #[must_use]
    pub fn rule_shard(&self, rule: usize) -> usize {
        self.assignment[rule]
    }

    // ── ingest entry points (same surface as `StreamEngine`) ─────────

    /// Ingest one row; returns the violation events it caused, in
    /// rule/tableau order — identical to the single-threaded engine.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<Vec<LedgerEvent>, TableError> {
        self.apply([RowOp::Insert(row)])
    }

    /// Ingest one row of already-interned ids (clone-free fan-out).
    pub fn push_id_row(&mut self, row: Vec<ValueId>) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(vec![IdOp::Insert(row)])
    }

    /// Ingest a batch of rows; returns the concatenated events. Atomic
    /// with respect to errors: the whole batch is validated before any
    /// row is ingested.
    pub fn push_batch(
        &mut self,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.apply(rows.into_iter().map(RowOp::Insert))
    }

    /// Ingest a batch of already-interned rows; atomic like
    /// [`ShardedEngine::push_batch`].
    pub fn push_id_batch(
        &mut self,
        rows: impl IntoIterator<Item = Vec<ValueId>>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(rows.into_iter().map(IdOp::Insert).collect())
    }

    /// Delete one live row; same contract as the single-threaded
    /// engine's `delete_row`.
    pub fn delete_row(&mut self, row: RowId) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(vec![IdOp::Delete(row)])
    }

    /// Update one live row in place (delete + insert fused on one slot).
    pub fn update_row(
        &mut self,
        row: RowId,
        cells: Vec<Value>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.apply([RowOp::Update(row, cells)])
    }

    /// Update one live row with already-interned ids.
    pub fn update_id_row(
        &mut self,
        row: RowId,
        cells: Vec<ValueId>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(vec![IdOp::Update(row, cells)])
    }

    /// Apply a batch of [`RowOp`]s; returns the concatenated events.
    /// Atomic with respect to errors (validated against a simulation of
    /// the live set before any op executes or is fanned out). This is
    /// the *synchronous* path: it submits, drains the pipeline, and
    /// concatenates — including any batches still pending from earlier
    /// [`ShardedEngine::submit`] calls, so mixing the two APIs never
    /// drops events.
    pub fn apply(
        &mut self,
        ops: impl IntoIterator<Item = RowOp>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        let id_ops = self.intern_ops(ops)?;
        self.run_id_ops(id_ops)
    }

    /// Submit a batch into the pipeline; returns every batch that
    /// *completed* (merged, in submission order) as a consequence —
    /// possibly none, while the run-ahead window still has room, and
    /// possibly several, including earlier submissions. Call
    /// [`ShardedEngine::flush`] to drain the rest.
    pub fn submit(
        &mut self,
        ops: impl IntoIterator<Item = RowOp>,
    ) -> Result<Vec<BatchEvents>, TableError> {
        let id_ops = self.intern_ops(ops)?;
        validate_shapes(&self.table, id_ops.iter().map(IdOp::shape))?;
        self.submit_inner(id_ops);
        Ok(std::mem::take(&mut self.completed))
    }

    /// [`ShardedEngine::submit`] for a batch of already-interned rows —
    /// the CLI's clone-free pipelined replay path.
    pub fn submit_id_batch(
        &mut self,
        rows: impl IntoIterator<Item = Vec<ValueId>>,
    ) -> Result<Vec<BatchEvents>, TableError> {
        let id_ops: Vec<IdOp> = rows.into_iter().map(IdOp::Insert).collect();
        validate_shapes(&self.table, id_ops.iter().map(IdOp::shape))?;
        self.submit_inner(id_ops);
        Ok(std::mem::take(&mut self.completed))
    }

    /// Drain the pipeline: merge every in-flight batch and return all
    /// completed-but-undelivered batches, in submission order.
    pub fn flush(&mut self) -> Vec<BatchEvents> {
        self.drain_in_flight();
        std::mem::take(&mut self.completed)
    }

    /// Replay an existing table's *live* rows in row order (clone-free:
    /// rows are carried over as interned ids, in one fan-out batch).
    pub fn replay_table(&mut self, table: &Table) -> Result<Vec<LedgerEvent>, TableError> {
        self.run_id_ops(
            table
                .iter_live()
                .map(|r| IdOp::Insert(table.row_ids(r)))
                .collect(),
        )
    }

    /// Validate shapes and intern every record once, coordinator-side
    /// (one pool lock acquisition per record); workers only ever see
    /// `Copy` ids.
    fn intern_ops(&self, ops: impl IntoIterator<Item = RowOp>) -> Result<Vec<IdOp>, TableError> {
        let ops: Vec<RowOp> = ops.into_iter().collect();
        validate_shapes(&self.table, ops.iter().map(OpShape::of))?;
        Ok(ops
            .into_iter()
            .map(|op| match op {
                RowOp::Insert(cells) => IdOp::Insert(ValuePool::intern_value_batch(&cells)),
                RowOp::Delete(row) => IdOp::Delete(row),
                RowOp::Update(row, cells) => {
                    IdOp::Update(row, ValuePool::intern_value_batch(&cells))
                }
            })
            .collect())
    }

    fn run_id_ops(&mut self, id_ops: Vec<IdOp>) -> Result<Vec<LedgerEvent>, TableError> {
        validate_shapes(&self.table, id_ops.iter().map(IdOp::shape))?;
        self.submit_inner(id_ops);
        self.drain_in_flight();
        let completed = std::mem::take(&mut self.completed);
        Ok(completed.into_iter().flat_map(|b| b.events).collect())
    }

    /// Fan a validated id-op batch out to every worker under a fresh
    /// epoch sequence number, advance the canonical table, then trim
    /// the pipeline to the run-ahead window (merging oldest-first).
    fn submit_inner(&mut self, id_ops: Vec<IdOp>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let op_count = id_ops.len();
        if op_count == 0 {
            // Empty batches keep the 1:1 batch ↔ seq mapping without a
            // round-trip: they complete immediately.
            self.completed.push(BatchEvents {
                seq,
                events: Vec::new(),
            });
            return;
        }
        obs::counter!("shard.batches").incr();
        obs::counter!("engine.ops").add(op_count as u64);
        {
            let _fanout = obs::span!("shard.fanout_ns");
            match self.shard_by {
                ShardBy::Rule => {
                    let batch = Arc::new(RoutedBatch {
                        ops: id_ops,
                        stride: 0,
                        shards: self.workers.len(),
                        removal: Vec::new(),
                        insert: Vec::new(),
                        removal_masks: Vec::new(),
                        insert_masks: Vec::new(),
                    });
                    for worker in &self.workers {
                        worker.send(WorkerMsg::Batch {
                            seq,
                            batch: Arc::clone(&batch),
                        });
                    }
                    // The coordinator's replica advances while the
                    // workers chew.
                    self.apply_to_canonical(&batch.ops);
                }
                ShardBy::Key => {
                    // Key derivation consults pre-op table state, so
                    // routing and the canonical apply interleave per op
                    // — then the routed batch fans out.
                    let batch = Arc::new(self.route_and_apply(id_ops));
                    for worker in &self.workers {
                        worker.send(WorkerMsg::Batch {
                            seq,
                            batch: Arc::clone(&batch),
                        });
                    }
                }
            }
        }
        self.in_flight.push_back((seq, op_count));
        obs::gauge!("pipeline.run_ahead").set(self.in_flight.len() as i64);
        while self.in_flight.len() > self.run_ahead {
            self.merge_oldest();
        }
        self.maybe_compact();
    }

    fn apply_to_canonical(&mut self, ops: &[IdOp]) {
        for op in ops {
            match op {
                IdOp::Insert(cells) => {
                    self.table
                        .push_id_cells(cells)
                        .expect("batch pre-validated");
                }
                IdOp::Delete(row) => {
                    self.table.delete_row(*row).expect("batch pre-validated");
                }
                IdOp::Update(row, cells) => {
                    self.table
                        .update_id_cells(*row, cells)
                        .expect("batch pre-validated");
                }
            }
        }
    }

    /// Key mode: derive each op's routes against pre-op table state
    /// while applying the ops to the canonical table in order — exactly
    /// the state the single-threaded engine would consult (removal
    /// routes from the pre-op row, insert routes from arriving cells).
    fn route_and_apply(&mut self, id_ops: Vec<IdOp>) -> RoutedBatch {
        let stride = self.route_stride;
        let shards = self.workers.len();
        // Rule bitmasks only fit u64; beyond that workers screen
        // rules themselves (the slow path — fine, 64+ live rules is
        // far past anything discovery emits).
        let exact = self.rules.len() <= 64;
        let mask_len = if exact { id_ops.len() * shards } else { 0 };
        let ShardedEngine {
            router,
            table,
            layout,
            const_cols,
            slot_map,
            ..
        } = self;
        let layout = &**layout;
        let slot_map = &**slot_map;
        let router = router.as_mut().expect("key mode ships routes");
        let mut removal = Vec::with_capacity(id_ops.len() * stride);
        let mut insert = Vec::with_capacity(id_ops.len() * stride);
        let mut removal_masks = vec![0u64; mask_len];
        let mut insert_masks = vec![0u64; mask_len];
        for (op_idx, op) in id_ops.iter().enumerate() {
            let masks = op_idx * shards..(op_idx + 1) * shards;
            match op {
                IdOp::Insert(cells) => {
                    removal.resize(removal.len() + stride, None);
                    let base = insert.len();
                    router.routes_for_cells(cells, &mut insert);
                    if exact {
                        fill_masks(
                            &insert[base..],
                            |c| cells[c],
                            &mut insert_masks[masks],
                            layout,
                            const_cols,
                            slot_map,
                        );
                    }
                    table.push_id_cells(cells).expect("batch pre-validated");
                }
                IdOp::Delete(row) => {
                    let base = removal.len();
                    router.routes_for_row(table, *row, &mut removal);
                    if exact {
                        // Pre-op cells — the tombstone lands after.
                        fill_masks(
                            &removal[base..],
                            |c| table.cell_id(*row, c),
                            &mut removal_masks[masks],
                            layout,
                            const_cols,
                            slot_map,
                        );
                    }
                    insert.resize(insert.len() + stride, None);
                    table.delete_row(*row).expect("batch pre-validated");
                }
                IdOp::Update(row, cells) => {
                    let base = removal.len();
                    router.routes_for_row(table, *row, &mut removal);
                    if exact {
                        fill_masks(
                            &removal[base..],
                            |c| table.cell_id(*row, c),
                            &mut removal_masks[masks.clone()],
                            layout,
                            const_cols,
                            slot_map,
                        );
                    }
                    table
                        .update_id_cells(*row, cells)
                        .expect("batch pre-validated");
                    let base = insert.len();
                    router.routes_for_cells(cells, &mut insert);
                    if exact {
                        fill_masks(
                            &insert[base..],
                            |c| cells[c],
                            &mut insert_masks[masks],
                            layout,
                            const_cols,
                            slot_map,
                        );
                    }
                }
            }
        }
        RoutedBatch {
            ops: id_ops,
            stride,
            shards,
            removal,
            insert,
            removal_masks,
            insert_masks,
        }
    }

    /// Merge the oldest in-flight batch: await every worker's reply for
    /// it (replies arrive in submission order on each FIFO channel,
    /// asserted via the echoed seq) and fold the outcomes into the
    /// ledger, drift monitor, and completed queue.
    fn merge_oldest(&mut self) {
        let Some((seq, op_count)) = self.in_flight.pop_front() else {
            return;
        };
        // How many younger batches were already submitted when this one
        // merges — 0 under the classic barrier, up to `run_ahead` when
        // the pipeline is saturated.
        obs::histogram!("merge.lag_batches").record(self.next_seq - seq - 1);
        // Merge wait: how long the coordinator sits blocked on worker
        // replies after finishing its own share of the batch.
        let replies: Vec<Vec<OpOutcome>> = {
            let _wait = obs::span!("shard.merge_wait_ns");
            self.workers
                .iter()
                .map(|worker| match worker.recv() {
                    WorkerReply::Batch { seq: got, outcomes } => {
                        assert_eq!(got, seq, "worker replies arrive in submission order");
                        outcomes
                    }
                    _ => unreachable!("worker replies in lockstep with requests"),
                })
                .collect()
        };
        let events = self.merge(op_count, replies);
        obs::counter!("engine.events").add(events.len() as u64);
        obs::gauge!("pipeline.run_ahead").set(self.in_flight.len() as i64);
        self.completed.push(BatchEvents { seq, events });
    }

    fn drain_in_flight(&mut self) {
        while !self.in_flight.is_empty() {
            self.merge_oldest();
        }
    }

    /// Merge per-shard outcomes: for each op, removal phase then insert
    /// phase, deltas ordered by `(global rule index, tableau tuple
    /// index)` — the same ledger call sequence the single-threaded
    /// engine performs, hence the same events in the same order.
    fn merge(&mut self, op_count: usize, mut replies: Vec<Vec<OpOutcome>>) -> Vec<LedgerEvent> {
        let _merge = obs::span!("shard.merge_ns");
        let mut events = Vec::new();
        let mut removal: Vec<RuleDeltas> = Vec::new();
        let mut insert: Vec<RuleDeltas> = Vec::new();
        for op in 0..op_count {
            for shard in &mut replies {
                let outcome = std::mem::take(&mut shard[op]);
                removal.extend(outcome.removal);
                insert.extend(outcome.insert);
            }
            self.merge_phase(&mut removal, true, &mut events);
            self.merge_phase(&mut insert, false, &mut events);
        }
        events
    }

    /// Replay one phase's merged deltas: per rule (ascending), fold the
    /// partial drift tallies — in key mode a rule's work for one row
    /// spreads over several workers/tuples — apply the folded tally
    /// once, then replay the rule's deltas in tableau-tuple order. In
    /// rule mode each rule has exactly one entry and this reduces to
    /// the classic per-rule replay.
    /// `entries` is a reusable buffer: drained (and cleared) here so the
    /// caller's allocation survives across ops.
    fn merge_phase(
        &mut self,
        entries: &mut Vec<RuleDeltas>,
        removal: bool,
        events: &mut Vec<LedgerEvent>,
    ) {
        entries.sort_by_key(|d| (d.rule, d.tuple));
        let mut i = 0;
        while i < entries.len() {
            let rule = entries[i].rule;
            let mut tally = DriftDelta {
                matched: false,
                created: 0,
                retracted: 0,
            };
            let mut j = i;
            while j < entries.len() && entries[j].rule == rule {
                let d = &entries[j];
                tally.absorb(DriftDelta {
                    matched: d.matched,
                    created: d.created,
                    retracted: d.retracted,
                });
                j += 1;
            }
            // The folded tally lands before any of the rule's deltas
            // replay — same order the per-rule collection preserved.
            if removal {
                self.drift.retire_delta(rule, tally);
            } else {
                self.drift.observe_delta(rule, tally);
            }
            for entry in &mut entries[i..j] {
                apply_deltas(&mut self.ledger, std::mem::take(&mut entry.deltas), events);
            }
            i = j;
        }
        entries.clear();
    }

    // ── rebalancing ──────────────────────────────────────────────────

    /// Redistribute load across shards by *observed* block counts
    /// (heaviest-first round-robin), after draining the pipeline. In
    /// rule mode whole rule states migrate between workers with their
    /// memos and partitions intact; in key mode hash slots are
    /// reassigned and the affected per-key state (memo entries, blocks
    /// with their asserted context) migrates. Either way the engine's
    /// observable behaviour is unchanged — only future load placement.
    pub fn rebalance(&mut self) {
        if self.workers.len() <= 1 {
            return;
        }
        self.drain_in_flight();
        obs::counter!("shard.rebalances").incr();
        match self.shard_by {
            ShardBy::Rule => self.rebalance_rules(),
            ShardBy::Key => self.rebalance_keys(),
        }
    }

    fn rebalance_rules(&mut self) {
        let stats: Vec<RuleStats> = self.gather_stats().into_iter().flatten().collect();
        let mut weights = vec![0usize; self.rules.len()];
        for s in &stats {
            // Observed blocks, floored at 1 so data-free rules still
            // spread instead of piling onto shard 0.
            weights[s.rule] = s.blocks.max(1);
        }
        self.assignment = ShardedEngine::assign_by_weight(&weights, self.workers.len());
        // Pull every rule state back, then re-install per the new map.
        for worker in &self.workers {
            worker.send(WorkerMsg::Extract);
        }
        let mut states: Vec<(usize, RuleState)> = Vec::with_capacity(self.rules.len());
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Extracted(mut s) => states.append(&mut s),
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
        for (shard, worker) in self.workers.iter().enumerate() {
            let assigned: Vec<(usize, RuleState)> = states
                .extract_if(.., |(rule, _)| self.assignment[*rule] == shard)
                .collect();
            worker.send(WorkerMsg::Install(assigned));
        }
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Installed => {}
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
    }

    /// Key-mode rebalance: census the per-slot block population, assign
    /// slots to workers heaviest-first, and migrate the per-key state
    /// of every slot that changed owner. Eval/lookup counters stay
    /// where the work happened, so global tallies are unaffected.
    fn rebalance_keys(&mut self) {
        let shards = self.workers.len();
        for worker in &self.workers {
            worker.send(WorkerMsg::SlotCensus);
        }
        let mut counts = vec![0usize; KEY_SLOTS];
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::SlotCensus(c) => {
                    for (slot, n) in c.into_iter().enumerate() {
                        counts[slot] += n;
                    }
                }
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
        // Floor at 1 so empty slots still spread round-robin.
        let weights: Vec<usize> = counts.iter().map(|&n| n.max(1)).collect();
        let new_map = Arc::new(ShardedEngine::assign_by_weight(&weights, shards));
        if *new_map == *self.slot_map {
            return;
        }
        for worker in &self.workers {
            worker.send(WorkerMsg::Rekey(Arc::clone(&new_map)));
        }
        let mut moved: Vec<(usize, Vec<TupleKeySlice>)> = Vec::new();
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Rekeyed(mut m) => moved.append(&mut m),
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
        self.slot_map = Arc::clone(&new_map);
        // Split each extracted slice by the new owner of its keys,
        // keeping the per-rule slice vectors tuple-aligned (one slice
        // per tableau tuple, possibly empty) as `install_keys` expects.
        let mut bundles: Vec<Vec<(usize, Vec<TupleKeySlice>)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (rule, slices) in moved {
            let mut per_shard: Vec<Vec<TupleKeySlice>> = (0..shards).map(|_| Vec::new()).collect();
            for slice in slices {
                match slice {
                    TupleKeySlice::Constant(entries) => {
                        let mut split: Vec<Vec<(u32, bool)>> =
                            (0..shards).map(|_| Vec::new()).collect();
                        for (id, hit) in entries {
                            split[new_map[slot_of_raw(id)]].push((id, hit));
                        }
                        for (w, part) in split.into_iter().enumerate() {
                            per_shard[w].push(TupleKeySlice::Constant(part));
                        }
                    }
                    TupleKeySlice::Variable(entries) => {
                        let mut split: Vec<Vec<_>> = (0..shards).map(|_| Vec::new()).collect();
                        for entry in entries {
                            let slot = slot_of_raw(entry.0.raw());
                            split[new_map[slot]].push(entry);
                        }
                        for (w, part) in split.into_iter().enumerate() {
                            per_shard[w].push(TupleKeySlice::Variable(part));
                        }
                    }
                }
            }
            for (w, slices) in per_shard.into_iter().enumerate() {
                if slices.iter().any(|s| !s.is_empty()) {
                    bundles[w].push((rule, slices));
                }
            }
        }
        for (worker, bundle) in self.workers.iter().zip(bundles) {
            worker.send(WorkerMsg::InstallKeys(bundle));
        }
        for worker in &self.workers {
            match worker.recv() {
                WorkerReply::Installed => {}
                _ => unreachable!("worker replies in lockstep with requests"),
            }
        }
    }

    /// One stats round-trip per worker (pipeline drained first — stats
    /// requests share the FIFO batch channel). Outer index = shard; in
    /// key mode every worker reports every rule, so per-rule figures
    /// are partial and must be summed across shards.
    fn gather_stats(&mut self) -> Vec<Vec<RuleStats>> {
        self.drain_in_flight();
        for worker in &self.workers {
            worker.send(WorkerMsg::Stats);
        }
        self.workers
            .iter()
            .map(|worker| match worker.recv() {
                WorkerReply::Stats(s) => s,
                _ => unreachable!("worker replies in lockstep with requests"),
            })
            .collect()
    }

    // ── accessors (same surface as `StreamEngine`) ───────────────────

    /// The ledger of live violations.
    #[must_use]
    pub fn ledger(&self) -> &ViolationLedger {
        &self.ledger
    }

    /// The accumulated (canonical) table.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Row *slots* ingested so far (tombstoned ones included).
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.table.row_count()
    }

    /// Rows currently live (ingested minus deleted).
    #[must_use]
    pub fn live_rows(&self) -> usize {
        self.table.live_rows()
    }

    /// The seeded rules, in index order.
    pub fn rules(&self) -> impl Iterator<Item = &Pfd> {
        self.rules.iter()
    }

    /// Total pattern evaluations across all shards, plus (in key mode)
    /// the coordinator's key-derivation memos — bounded by
    /// `Σ_tuple distinct(LHS column)`, exactly as in the single-threaded
    /// engine: the memoization guarantee shards per rule in rule mode
    /// and per distinct value in key mode. Drains the pipeline.
    #[must_use]
    pub fn pattern_evals(&mut self) -> usize {
        let worker: usize = self
            .gather_stats()
            .iter()
            .flatten()
            .map(|s| s.pattern_evals)
            .sum();
        worker + self.router.as_ref().map_or(0, Router::key_evals)
    }

    /// Total memo consultations (hits + misses) across all shards and
    /// the key router — together with [`ShardedEngine::pattern_evals`]
    /// this yields the memo hit rate. Drains the pipeline.
    #[must_use]
    pub fn pattern_lookups(&mut self) -> usize {
        let worker: usize = self
            .gather_stats()
            .iter()
            .flatten()
            .map(|s| s.pattern_lookups)
            .sum();
        worker + self.router.as_ref().map_or(0, Router::key_lookups)
    }

    /// Publish pull-based gauges into the global metrics registry.
    ///
    /// Same contract as [`StreamEngine::publish_metrics`]: cheap enough
    /// for a stats tick but not for a per-batch call — this one drains
    /// the pipeline and does a full `Stats` round-trip to every worker
    /// for the memo and block figures, including per-shard
    /// `shard.N.keys` block-ownership gauges. No-op while the recorder
    /// is disabled.
    ///
    /// [`StreamEngine::publish_metrics`]: crate::StreamEngine::publish_metrics
    pub fn publish_metrics(&mut self) {
        if !obs::enabled() {
            return;
        }
        let table = self.table.mem_footprint();
        obs::gauge!("table.slots").set(table.total_slots as i64);
        obs::gauge!("table.live").set(table.live_slots as i64);
        obs::gauge!("table.bytes").set(table.bytes as i64);
        let pool = ValuePool::mem_footprint();
        obs::gauge!("pool.bytes").set(pool.bytes as i64);
        obs::gauge!("pool.strings").set(pool.strings as i64);
        obs::gauge!("pool.string_bytes").set(pool.string_bytes as i64);
        obs::gauge!("engine.rules").set(self.rules.len() as i64);
        let per_worker = self.gather_stats();
        for (shard, stats) in per_worker.iter().enumerate() {
            // How many key blocks each worker currently owns — flat in
            // rule mode, the load-balance signal in key mode.
            obs::gauge(&format!("shard.{shard}.keys"))
                .set(stats.iter().map(|s| s.blocks).sum::<usize>() as i64);
        }
        let stats: Vec<&RuleStats> = per_worker.iter().flatten().collect();
        obs::gauge!("engine.blocks").set(stats.iter().map(|s| s.blocks).sum::<usize>() as i64);
        let router_evals = self.router.as_ref().map_or(0, Router::key_evals);
        let router_lookups = self.router.as_ref().map_or(0, Router::key_lookups);
        obs::gauge!("memo.evals")
            .set((stats.iter().map(|s| s.pattern_evals).sum::<usize>() + router_evals) as i64);
        obs::gauge!("memo.lookups")
            .set((stats.iter().map(|s| s.pattern_lookups).sum::<usize>() + router_lookups) as i64);
        obs::gauge!("ledger.live").set(self.ledger.live_count() as i64);
        obs::gauge!("ledger.created_total").set(self.ledger.created_total() as i64);
        obs::gauge!("ledger.retracted_total").set(self.ledger.retracted_total() as i64);
        obs::gauge!("engine.compaction_epochs").set(self.compaction.epochs as i64);
        obs::gauge!("engine.reclaimed_slots").set(self.compaction.reclaimed_slots as i64);
        // Reclamation: same gauge set as the single-threaded engine
        // (the `pool.*` figures are process-global either way).
        obs::gauge!("pool.live_strings").set(ValuePool::live_strings() as i64);
        let (freed_strings, freed_bytes) = ValuePool::reclaimed();
        obs::gauge!("pool.freed_strings").set(freed_strings as i64);
        obs::gauge!("pool.freed_bytes").set(freed_bytes as i64);
        obs::gauge!("engine.reclaimed_strings").set(self.reclaim_stats.strings as i64);
        obs::gauge!("engine.reclaimed_bytes").set(self.reclaim_stats.bytes as i64);
    }

    /// Streaming health counters for one rule.
    #[must_use]
    pub fn rule_health(&self, rule: usize) -> RuleHealth {
        self.drift.health(rule)
    }

    /// Rules whose live confidence decayed below the discovery
    /// threshold, in rule-index order — the same explicit ordering
    /// contract as the single-threaded engine's `drift_report` (drift
    /// state is coordinator-owned, so shard completion order cannot
    /// reach it; the sort pins the contract against future gathering
    /// changes).
    #[must_use]
    pub fn drift_report(&self) -> Vec<DriftReport> {
        let mut reports: Vec<DriftReport> = self
            .rules
            .iter()
            .enumerate()
            .filter_map(|(i, pfd)| self.drift.judge(i, pfd.embedded_fd()))
            .collect();
        reports.sort_by_key(|r| r.rule);
        reports
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Unmerged batches must be received before the worker handles
        // close their channels, or a worker could exit mid-batch; the
        // events are discarded (the caller chose not to flush).
        self.drain_in_flight();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_core::PatternTuple;

    fn schema() -> Schema {
        Schema::new(["zip", "city"]).unwrap()
    }

    fn zip_variable_pfd() -> Pfd {
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::variable("[\\D{3}]\\D{2}".parse().unwrap())],
        )
    }

    fn key_engine(shards: usize, run_ahead: usize) -> ShardedEngine {
        let config = StreamConfig {
            shards,
            shard_by: ShardBy::Key,
            run_ahead,
            ..StreamConfig::default()
        };
        ShardedEngine::with_config(schema(), vec![zip_variable_pfd()], config)
    }

    #[test]
    fn assignment_spreads_heaviest_first() {
        let weights = [1, 4, 4, 1, 2];
        let a = ShardedEngine::assign_by_weight(&weights, 2);
        // Sorted by weight desc, index asc: 1, 2, 4, 0, 3 → shards
        // 0, 1, 0, 1, 0.
        assert_eq!(a, vec![1, 0, 1, 0, 0]);
    }

    #[test]
    fn shard_count_clamped_to_rules() {
        let engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 8);
        assert_eq!(engine.shard_count(), 1);
        let engine = ShardedEngine::new(schema(), vec![], 4);
        assert_eq!(engine.shard_count(), 1);
    }

    #[test]
    fn key_mode_ignores_the_rule_clamp() {
        // One rule, four workers: the whole point of the key axis.
        let engine = key_engine(4, 0);
        assert_eq!(engine.shard_count(), 4);
        assert_eq!(engine.shard_by(), ShardBy::Key);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 2);
        let events = engine.apply([]).unwrap();
        assert!(events.is_empty());
        assert_eq!(engine.row_count(), 0);
    }

    #[test]
    fn basic_flow_matches_expectations() {
        let mut engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 2);
        assert!(engine
            .push_row(vec![Value::text("90001"), Value::text("Los Angeles")])
            .unwrap()
            .is_empty());
        let events = engine
            .push_row(vec![Value::text("90002"), Value::text("New York")])
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].is_created());
        assert_eq!(engine.ledger().live_count(), 1);
        assert_eq!(engine.live_rows(), 2);
        // Deleting the flagged row retracts its violation.
        let events = engine.delete_row(1).unwrap();
        assert!(events.iter().any(|e| !e.is_created()));
        assert!(engine.ledger().is_empty());
    }

    #[test]
    fn key_mode_basic_flow_matches_rule_mode() {
        let mut engine = key_engine(4, 0);
        assert!(engine
            .push_row(vec![Value::text("90001"), Value::text("Los Angeles")])
            .unwrap()
            .is_empty());
        let events = engine
            .push_row(vec![Value::text("90002"), Value::text("New York")])
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].is_created());
        assert_eq!(engine.ledger().live_count(), 1);
        let events = engine.delete_row(1).unwrap();
        assert!(events.iter().any(|e| !e.is_created()));
        assert!(engine.ledger().is_empty());
        // One block lives on exactly one worker; the eval count is the
        // single-threaded figure (keys derived once, on the router).
        assert_eq!(engine.pattern_evals(), 2);
    }

    #[test]
    fn pipelined_submissions_complete_in_order() {
        let config = StreamConfig {
            shards: 2,
            shard_by: ShardBy::Key,
            run_ahead: 4,
            ..StreamConfig::default()
        };
        let mut engine = ShardedEngine::with_config(schema(), vec![zip_variable_pfd()], config);
        let mut completed = Vec::new();
        for i in 0..8 {
            let ops = [RowOp::Insert(vec![
                Value::text(format!("9000{i}")),
                Value::text(if i % 2 == 0 { "LA" } else { "NY" }),
            ])];
            completed.extend(engine.submit(ops).unwrap());
        }
        // The window held some batches back…
        assert!(completed.len() < 8);
        completed.extend(engine.flush());
        assert_eq!(engine.pipeline_depth(), 0);
        // …but completion order is submission order, gap-free.
        let seqs: Vec<u64> = completed.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<u64>>());
        // Same events as the synchronous path on a fresh engine.
        let mut sync = key_engine(2, 0);
        let mut expected = Vec::new();
        for i in 0..8 {
            expected.extend(
                sync.push_row(vec![
                    Value::text(format!("9000{i}")),
                    Value::text(if i % 2 == 0 { "LA" } else { "NY" }),
                ])
                .unwrap(),
            );
        }
        let got: Vec<_> = completed.into_iter().flat_map(|b| b.events).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn key_mode_rebalance_preserves_behaviour() {
        let mut engine = key_engine(4, 0);
        for i in 0..20 {
            engine
                .push_row(vec![
                    Value::text(format!("{:05}", 90000 + i)),
                    Value::text(if i % 5 == 0 { "Odd One" } else { "LA" }),
                ])
                .unwrap();
        }
        let live_before = engine.ledger().live_count();
        let evals_before = engine.pattern_evals();
        engine.rebalance();
        // Nothing observable moved…
        assert_eq!(engine.ledger().live_count(), live_before);
        assert_eq!(engine.pattern_evals(), evals_before);
        // …and the engine still processes correctly after migration: a
        // fresh minority row in the (possibly migrated) block is
        // flagged on arrival.
        let events = engine
            .push_row(vec![Value::text("90099"), Value::text("Odd One")])
            .unwrap();
        assert!(events.iter().any(|e| e.is_created()));
    }

    #[test]
    fn coordinated_compaction_keeps_the_engine_consistent() {
        let mut engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 2);
        for (i, city) in [
            "Los Angeles",
            "Los Angeles",
            "Los Angeles",
            "New York", // row 3: the minority
        ]
        .iter()
        .enumerate()
        {
            engine
                .push_row(vec![Value::text(format!("9000{i}")), Value::text(*city)])
                .unwrap();
        }
        engine.delete_row(0).unwrap();
        engine.delete_row(1).unwrap();
        let remap = engine.compact();
        assert_eq!(remap.reclaimed(), 2);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.compaction_stats().epochs, 1);
        assert_eq!(engine.row_count(), 2);
        // The flagged row moved 3 → 1 in the ledger.
        assert_eq!(engine.ledger().snapshot()[0].row, 1);
        // Workers and coordinator stayed aligned: ops in the new id
        // space behave, and the retraction carries the new epoch.
        let events = engine.delete_row(1).unwrap();
        assert!(events.iter().any(|e| !e.is_created() && e.epoch == 1));
        assert!(engine.ledger().is_empty());
        assert_eq!(engine.live_rows(), 1);
    }

    #[test]
    fn auto_compaction_is_checked_at_batch_boundaries() {
        let config = StreamConfig {
            shards: 2,
            compact_ratio: 0.4,
            ..StreamConfig::default()
        };
        let mut engine = ShardedEngine::with_config(schema(), vec![zip_variable_pfd()], config);
        let mut ops: Vec<RowOp> = (0..5)
            .map(|i| RowOp::Insert(vec![Value::text(format!("9000{i}")), Value::text("LA")]))
            .collect();
        ops.extend([RowOp::Delete(1), RowOp::Delete(3)]);
        engine.apply(ops).unwrap();
        // 2/5 = 0.4 ≥ 0.4: one epoch at the batch boundary.
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.row_count(), 3);
        assert_eq!(engine.compaction_stats().reclaimed_slots, 2);
    }

    #[test]
    fn invalid_ops_leave_the_engine_untouched() {
        let mut engine = ShardedEngine::new(schema(), vec![zip_variable_pfd()], 2);
        engine
            .push_row(vec![Value::text("90001"), Value::text("Los Angeles")])
            .unwrap();
        assert!(matches!(
            engine.apply([RowOp::Delete(0), RowOp::Delete(0)]),
            Err(TableError::NoSuchRow { row: 0 })
        ));
        assert_eq!(engine.live_rows(), 1, "nothing applied");
        assert!(matches!(
            engine.push_row(vec![Value::text("just-one")]),
            Err(TableError::ArityMismatch { .. })
        ));
        // The engine still works after rejected batches.
        engine
            .push_row(vec![Value::text("90002"), Value::text("Los Angeles")])
            .unwrap();
        assert_eq!(engine.live_rows(), 2);
    }
}
