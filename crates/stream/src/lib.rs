//! `anmat-stream` — incremental PFD violation maintenance for *mutable*
//! streams: inserts, deletes, and in-place updates.
//!
//! The batch pipeline (`discover` → confirm → `detect_all`) recomputes
//! every violation from scratch per call — `O(table)` even when a single
//! row changed. This crate maintains violations *as deltas arrive*:
//!
//! * [`StreamEngine`] is seeded with confirmed [`Pfd`]s (from a
//!   `RuleStore` or straight from discovery) and consumes
//!   [`RowOp`](anmat_table::RowOp)s — [`StreamEngine::push_row`] /
//!   [`StreamEngine::push_batch`] for appends,
//!   [`StreamEngine::delete_row`] / [`StreamEngine::update_row`] for
//!   mutations, [`StreamEngine::apply`] for a mixed op batch — emitting
//!   [`LedgerEvent`]s: newly created violations *and retractions* of
//!   earlier ones (a late burst of agreeing rows can flip a block's
//!   majority RHS, withdrawing what used to look like an error; a
//!   delete can do the same in reverse).
//! * Constant tableau tuples cost `O(tableau)` per op — a memoized
//!   pattern match against the value, independent of table size.
//!   Variable tuples maintain an incremental
//!   [`BlockingPartition`](anmat_index::BlockingPartition): an insert or
//!   removal touches exactly the affected key's block, and only that
//!   block's violations are re-derived and diffed. Deletes and updates
//!   are `O(affected block)`, never `O(table)`.
//! * An update is delete+insert *fused on one slot*: the row keeps its
//!   `RowId` (the table tombstones deleted slots rather than moving
//!   rows, so ids embedded in violations and ledgers never dangle) and
//!   the caller gets one coherent event batch.
//! * Tombstones are reclaimed by **compaction epochs**:
//!   [`StreamEngine::compact`] (or the automatic
//!   [`StreamConfig::compact_ratio`] trigger, checked at batch
//!   boundaries) drops dead slots and threads the resulting
//!   [`RowIdRemap`](anmat_table::RowIdRemap) through every consumer —
//!   blocking partitions, asserted block context, and the ledger's live
//!   violations all translate in place, with zero pattern
//!   re-evaluation and zero events. Each [`LedgerEvent`] carries the
//!   epoch it was emitted in, so event history stays valid verbatim
//!   across renumberings. Memory is thereby proportional to *live*
//!   rows, not to history (`tests/mutations.rs` pins the whole
//!   protocol: compacted runs are observably identical to uncompacted
//!   ones modulo the remap, and slots stay within 2× live rows at
//!   ratio 0.3).
//! * Violation semantics are *identical to batch*: the engine calls the
//!   same `flag_block_minority` / `violation_at` primitives as
//!   `detect_all`, so any interleaving of inserts/deletes/updates ends
//!   in exactly the batch violation set over the surviving rows
//!   (property-tested in `tests/equivalence.rs` for appends and
//!   `tests/mutations.rs` for random op interleavings).
//! * A [`DriftMonitor`] tracks per-rule confidence on the live stream —
//!   the denominator shrinks as matched rows are deleted — and flags
//!   rules that decay below the discovery threshold, so they can be
//!   demoted to `RuleStatus::Pending` for re-review.
//! * [`ShardedEngine`] runs the same delta pipeline across worker
//!   threads, on either of two axes ([`StreamConfig::shard_by`]):
//!   **rule-granular** (each worker owns a disjoint rule subset — the
//!   incremental state of different rules is mutually independent) or
//!   **key-granular** ([`ShardBy::Key`] — blocking keys are hashed over
//!   workers, so a single heavy rule's blocks spread across every
//!   core; the coordinator derives each distinct key once and ships
//!   routes with the batch). Each op batch is interned once, fanned out
//!   over bounded channels, and per-shard deltas are merged back in
//!   `(rule, tuple)` order into one coordinator-owned ledger. With
//!   [`StreamConfig::run_ahead`]` > 0` the coordinator *pipelines*
//!   batches: [`ShardedEngine::submit`] returns while workers run
//!   ahead, and epoch-sequence-tagged merges happen strictly in
//!   submission order ([`BatchEvents`]). The **determinism contract**:
//!   for any op sequence, shard count, axis, and run-ahead window, the
//!   event stream, ledger state, per-rule health, and drift report
//!   are bit-for-bit identical to [`StreamEngine`]'s (property-tested in
//!   `tests/shard_equivalence.rs`). Cross-shard string traffic rides the
//!   `ValuePool`, whose id→string resolution is lock-free. Compaction
//!   runs as a coordinated **epoch barrier** ([`ShardedEngine::compact`]):
//!   the pipeline drains, the coordinator compacts, broadcasts the
//!   remap, and every worker remaps its replica and rule state before
//!   the next batch flows — the equivalence contract holds across
//!   compactions too.
//!
//! # Example
//!
//! ```
//! use anmat_stream::StreamEngine;
//! use anmat_core::{Pfd, PatternTuple};
//! use anmat_table::Schema;
//!
//! // λ5: rows sharing a 3-digit zip prefix must share a city.
//! let pfd = Pfd::new(
//!     "Zip",
//!     "zip",
//!     "city",
//!     vec![PatternTuple::variable("[\\D{3}]\\D{2}".parse().unwrap())],
//! );
//! let schema = Schema::new(["zip", "city"]).unwrap();
//! let mut engine = StreamEngine::new(schema, vec![pfd]);
//!
//! for row in [
//!     ["90001", "Los Angeles"],
//!     ["90002", "Los Angeles"],
//!     ["90004", "New York"], // ← flagged on arrival
//! ] {
//!     let events = engine.push_str_row(row).unwrap();
//!     for e in &events {
//!         println!("{e:?}");
//!     }
//! }
//! assert_eq!(engine.ledger().live_count(), 1);
//! ```

pub mod drift;
pub mod engine;
pub mod sharded;

pub use drift::{DriftMonitor, DriftReport, RuleHealth};
pub use engine::{CompactionStats, EngineSnapshot, ShardBy, StreamConfig, StreamEngine};
pub use sharded::{BatchEvents, ShardedEngine, KEY_SLOTS};

// Re-exported so downstream users of the engine's event stream don't need
// a direct anmat-core dependency.
pub use anmat_core::{LedgerChange, LedgerEvent, Pfd, ViolationLedger};
