//! `anmat-stream` — incremental PFD violation maintenance for
//! append-heavy workloads.
//!
//! The batch pipeline (`discover` → confirm → `detect_all`) recomputes
//! every violation from scratch per call — `O(table)` even when a single
//! row arrived. This crate maintains violations *as rows arrive*:
//!
//! * [`StreamEngine`] is seeded with confirmed [`Pfd`]s (from a
//!   `RuleStore` or straight from discovery) and ingests rows via
//!   [`StreamEngine::push_row`] / [`StreamEngine::push_batch`], emitting
//!   [`LedgerEvent`]s — newly created violations *and retractions* of
//!   earlier ones (a late burst of agreeing rows can flip a block's
//!   majority RHS, withdrawing what used to look like an error).
//! * Constant tableau tuples cost `O(tableau)` per row — a pattern match
//!   against the new value, independent of table size. Variable tuples
//!   maintain an incremental
//!   [`BlockingPartition`](anmat_index::BlockingPartition): an insert
//!   touches exactly the affected key's block, and only that block's
//!   violations are re-derived and diffed.
//! * Violation semantics are *identical to batch*: the engine calls the
//!   same `flag_block_minority` / `violation_at` primitives as
//!   `detect_all`, so replaying any table row-by-row ends in exactly the
//!   batch violation set (property-tested in `tests/equivalence.rs`).
//! * A [`DriftMonitor`] tracks per-rule confidence on the live stream
//!   and flags rules that decay below the discovery threshold, so they
//!   can be demoted to `RuleStatus::Pending` for re-review.
//!
//! # Example
//!
//! ```
//! use anmat_stream::StreamEngine;
//! use anmat_core::{Pfd, PatternTuple};
//! use anmat_table::Schema;
//!
//! // λ5: rows sharing a 3-digit zip prefix must share a city.
//! let pfd = Pfd::new(
//!     "Zip",
//!     "zip",
//!     "city",
//!     vec![PatternTuple::variable("[\\D{3}]\\D{2}".parse().unwrap())],
//! );
//! let schema = Schema::new(["zip", "city"]).unwrap();
//! let mut engine = StreamEngine::new(schema, vec![pfd]);
//!
//! for row in [
//!     ["90001", "Los Angeles"],
//!     ["90002", "Los Angeles"],
//!     ["90004", "New York"], // ← flagged on arrival
//! ] {
//!     let events = engine.push_str_row(row).unwrap();
//!     for e in &events {
//!         println!("{e:?}");
//!     }
//! }
//! assert_eq!(engine.ledger().live_count(), 1);
//! ```

pub mod drift;
pub mod engine;

pub use drift::{DriftMonitor, DriftReport, RuleHealth};
pub use engine::{StreamConfig, StreamEngine};

// Re-exported so downstream users of the engine's event stream don't need
// a direct anmat-core dependency.
pub use anmat_core::{LedgerEvent, Pfd, ViolationLedger};
