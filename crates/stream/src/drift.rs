//! Rule drift monitoring.
//!
//! Discovery accepts a rule when its dominant RHS reaches confidence
//! `1 − max_violation_ratio` over at least `min_support` rows. Live
//! traffic can invalidate that acceptance — a schema migration, an
//! upstream format change, or genuine data drift can push a rule's
//! observed violation ratio past what discovery would have tolerated.
//! The [`DriftMonitor`] recomputes the same statistic incrementally over
//! the stream, so decayed rules can be demoted to
//! `RuleStatus::Pending` for human re-review instead of silently
//! spraying false positives.

use anmat_core::Pfd;

/// Streaming health counters for one rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleHealth {
    /// Rows whose LHS matched at least one tableau tuple of the rule.
    pub matched_rows: usize,
    /// Violations the rule itself currently asserts (its creations minus
    /// its retractions). Counted per rule, independent of the ledger's
    /// cross-rule deduplication, so two rules implying the same
    /// violation each carry their own tally.
    pub live_violations: usize,
}

impl RuleHealth {
    /// `1 − live_violations / matched_rows` (1.0 with no matches yet) —
    /// the streaming analogue of the discovery decision function's
    /// confidence.
    #[must_use]
    pub fn confidence(&self) -> f64 {
        if self.matched_rows == 0 {
            return 1.0;
        }
        1.0 - self.live_violations as f64 / self.matched_rows as f64
    }
}

/// One drifted rule, with the numbers behind the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Index of the rule in the engine's seeded rule list.
    pub rule: usize,
    /// The rule's embedded FD, for display.
    pub dependency: String,
    /// Rows matched so far.
    pub matched_rows: usize,
    /// Live violations attributed to the rule.
    pub live_violations: usize,
    /// Observed streaming confidence.
    pub confidence: f64,
    /// The discovery threshold the rule fell below.
    pub min_confidence: f64,
}

/// One rule's drift contribution for one op, as a mergeable partial
/// tally.
///
/// Key-granular sharding splits a single rule's work for one row across
/// workers (one per tableau tuple the row lands on), so no worker sees
/// the whole picture. Each emits a `DriftDelta`; the coordinator folds
/// them with [`DriftDelta::absorb`] — `matched` is an OR (the row
/// matched the rule iff *any* tuple matched), creations and retractions
/// are sums — and applies the merged tally once per rule via
/// [`DriftMonitor::observe_delta`] / [`DriftMonitor::retire_delta`].
/// Folding partial tallies is exactly equivalent to the single-threaded
/// `observe`/`retire` call for the op, which is what keeps sharded drift
/// reports bit-for-bit identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftDelta {
    /// Did the row's LHS match at least one tableau tuple (on the
    /// emitting worker)?
    pub matched: bool,
    /// Violations created by this op for this rule.
    pub created: usize,
    /// Violations retracted by this op for this rule.
    pub retracted: usize,
}

impl DriftDelta {
    /// Fold another partial tally into this one (`matched` ORs, counts
    /// add). Commutative and associative, so merge order across workers
    /// does not matter.
    pub fn absorb(&mut self, other: DriftDelta) {
        self.matched |= other.matched;
        self.created += other.created;
        self.retracted += other.retracted;
    }
}

/// Incrementally maintained per-rule health, judged against the
/// discovery thresholds.
#[derive(Debug)]
pub struct DriftMonitor {
    health: Vec<RuleHealth>,
    min_support: usize,
    min_confidence: f64,
}

impl DriftMonitor {
    /// A monitor for `rule_count` rules with the given discovery-style
    /// thresholds.
    #[must_use]
    pub fn new(rule_count: usize, min_support: usize, max_violation_ratio: f64) -> DriftMonitor {
        DriftMonitor {
            health: vec![RuleHealth::default(); rule_count],
            min_support,
            min_confidence: 1.0 - max_violation_ratio,
        }
    }

    /// Record one processed row for a rule: whether its LHS matched, and
    /// the violation deltas the row caused for that rule.
    pub fn observe(&mut self, rule: usize, matched: bool, created: usize, retracted: usize) {
        let h = &mut self.health[rule];
        if matched {
            h.matched_rows += 1;
        }
        h.live_violations = (h.live_violations + created).saturating_sub(retracted);
    }

    /// Record one *removed* row for a rule: the inverse of
    /// [`DriftMonitor::observe`]. The denominator shrinks with the
    /// stream — a rule judged over 1 000 matched rows of which 900 were
    /// later deleted is judged over the 100 that remain — and the
    /// violation deltas the removal caused (retractions for the row's
    /// own violations, plus any creations from a majority re-derive)
    /// keep the numerator exact.
    pub fn retire(&mut self, rule: usize, matched: bool, created: usize, retracted: usize) {
        let h = &mut self.health[rule];
        if matched {
            h.matched_rows = h.matched_rows.saturating_sub(1);
        }
        h.live_violations = (h.live_violations + created).saturating_sub(retracted);
    }

    /// [`DriftMonitor::observe`] from a merged partial tally — the
    /// coordinator-side entry point for key-granular sharding.
    pub fn observe_delta(&mut self, rule: usize, delta: DriftDelta) {
        self.observe(rule, delta.matched, delta.created, delta.retracted);
    }

    /// [`DriftMonitor::retire`] from a merged partial tally.
    pub fn retire_delta(&mut self, rule: usize, delta: DriftDelta) {
        self.retire(rule, delta.matched, delta.created, delta.retracted);
    }

    /// Health counters for one rule.
    #[must_use]
    pub fn health(&self, rule: usize) -> RuleHealth {
        self.health[rule]
    }

    /// Judge one rule: a report if its streaming confidence fell below
    /// the discovery threshold (only once `min_support` rows matched).
    #[must_use]
    pub fn judge(&self, rule: usize, dependency: String) -> Option<DriftReport> {
        let h = self.health[rule];
        if h.matched_rows < self.min_support || h.confidence() >= self.min_confidence {
            return None;
        }
        Some(DriftReport {
            rule,
            dependency,
            matched_rows: h.matched_rows,
            live_violations: h.live_violations,
            confidence: h.confidence(),
            min_confidence: self.min_confidence,
        })
    }

    /// All drifted rules (see [`DriftMonitor::judge`]).
    #[must_use]
    pub fn drifted(&self, rules: &[Pfd]) -> Vec<DriftReport> {
        (0..self.health.len())
            .filter_map(|i| {
                self.judge(
                    i,
                    rules
                        .get(i)
                        .map(Pfd::embedded_fd)
                        .unwrap_or_else(|| format!("rule {i}")),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_rule_not_reported() {
        let mut m = DriftMonitor::new(1, 5, 0.3);
        for _ in 0..20 {
            m.observe(0, true, 0, 0);
        }
        m.observe(0, true, 1, 0); // one violation in 21 rows
        assert!(m.drifted(&[]).is_empty());
        assert!(m.health(0).confidence() > 0.9);
    }

    #[test]
    fn decayed_rule_reported_after_min_support() {
        let mut m = DriftMonitor::new(2, 5, 0.3);
        // Rule 0 violates on every row — but only 3 matches: not judged.
        for _ in 0..3 {
            m.observe(0, true, 1, 0);
        }
        assert!(m.drifted(&[]).is_empty());
        // Two more matched rows cross min_support; confidence 0 < 0.7.
        for _ in 0..2 {
            m.observe(0, true, 1, 0);
        }
        let drifted = m.drifted(&[]);
        assert_eq!(drifted.len(), 1);
        assert_eq!(drifted[0].rule, 0);
        assert_eq!(drifted[0].live_violations, 5);
        assert!(drifted[0].confidence < drifted[0].min_confidence);
    }

    #[test]
    fn retire_shrinks_the_denominator() {
        let mut m = DriftMonitor::new(1, 2, 0.3);
        // 10 clean matched rows, then 2 violating ones: confidence 10/12.
        for _ in 0..10 {
            m.observe(0, true, 0, 0);
        }
        for _ in 0..2 {
            m.observe(0, true, 1, 0);
        }
        assert!(m.drifted(&[]).is_empty());
        // Deleting 8 clean rows leaves 2 violations in 4 matched rows:
        // confidence 0.5 < 0.7 → drifted.
        for _ in 0..8 {
            m.retire(0, true, 0, 0);
        }
        let drifted = m.drifted(&[]);
        assert_eq!(drifted.len(), 1);
        assert_eq!(drifted[0].matched_rows, 4);
        assert!((drifted[0].confidence - 0.5).abs() < 1e-12);
        // Deleting the violating rows (their violations retract) heals it.
        m.retire(0, true, 0, 1);
        m.retire(0, true, 0, 1);
        assert!(m.drifted(&[]).is_empty());
        assert_eq!(m.health(0).live_violations, 0);
    }

    #[test]
    fn merged_partial_tallies_equal_sequential_observes() {
        // Two workers each see half of a rule's work for a stream of ops;
        // folding their partial tallies must land on the same health as
        // the single-threaded call sequence.
        type WorkerObs = (bool, usize, usize);
        let mut split = DriftMonitor::new(1, 2, 0.3);
        let mut single = DriftMonitor::new(1, 2, 0.3);
        let ops: &[(WorkerObs, WorkerObs)] = &[
            ((true, 1, 0), (false, 0, 0)),
            ((false, 0, 0), (true, 2, 1)),
            ((true, 1, 0), (true, 0, 2)),
            ((false, 0, 0), (false, 0, 0)),
        ];
        for &((m_a, c_a, r_a), (m_b, c_b, r_b)) in ops {
            let mut tally = DriftDelta {
                matched: m_a,
                created: c_a,
                retracted: r_a,
            };
            tally.absorb(DriftDelta {
                matched: m_b,
                created: c_b,
                retracted: r_b,
            });
            split.observe_delta(0, tally);
            single.observe(0, m_a || m_b, c_a + c_b, r_a + r_b);
        }
        assert_eq!(split.health(0), single.health(0));
        // Retire side, same shape.
        let mut tally = DriftDelta::default();
        tally.absorb(DriftDelta {
            matched: true,
            created: 0,
            retracted: 1,
        });
        split.retire_delta(0, tally);
        single.retire(0, true, 0, 1);
        assert_eq!(split.health(0), single.health(0));
    }

    #[test]
    fn retractions_restore_confidence() {
        let mut m = DriftMonitor::new(1, 2, 0.3);
        for _ in 0..10 {
            m.observe(0, true, 1, 0);
        }
        assert_eq!(m.drifted(&[]).len(), 1);
        // Majority flips retract the violations: health recovers.
        m.observe(0, true, 0, 10);
        assert!(m.drifted(&[]).is_empty());
        assert_eq!(m.health(0).live_violations, 0);
    }
}
