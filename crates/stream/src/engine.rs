//! The incremental violation engine.
//!
//! Ingest is *interned end-to-end*: [`StreamEngine::push_row`] interns
//! each cell once into the global `ValuePool` (and
//! [`StreamEngine::push_id_row`] skips even that), after which every
//! per-rule check operates on `Copy` `ValueId`s — agreement checks are
//! id comparisons and pattern matching is memoized per distinct value,
//! so per-row marginal cost depends on the column's *distinct-value*
//! profile, not its row count.
//!
//! Per-rule state mirrors the batch detector's dispatch:
//!
//! * each **constant** tableau tuple keeps its (embedded) LHS pattern
//!   behind a per-`(pattern, ValueId)` [`MatchMemo`] and its expected RHS
//!   as an interned id — a new row is checked with the same
//!   [`violation_at`] primitive the batch scan uses, costing a pattern
//!   evaluation only on the first sighting of a distinct LHS value;
//! * each **variable** tableau tuple keeps an incremental
//!   [`BlockingPartition`] keyed by the constrained captures (extracted
//!   at most once per distinct LHS value) — a new row joins exactly one
//!   block, and the block's asserted violations are updated along one of
//!   three transition paths (see the private `BlockState`): `O(1)` for
//!   the common arrivals, `O(affected block)` only on a majority flip,
//!   with retractions flowing through the [`ViolationLedger`].
//!
//! Per-insert cost is `O(tableau)` for constant tuples plus `O(1)`
//! amortized for variable tuples — never `O(table)`.

use crate::drift::{DriftMonitor, DriftReport, RuleHealth};
use anmat_core::detect::constant::violation_at;
use anmat_core::detect::variable::{flag_block_minority, minority_violation, MAX_WITNESSES};
use anmat_core::discovery::DiscoveryConfig;
use anmat_core::{
    LedgerEvent, LedgerSnapshot, LhsCell, Pfd, RhsCell, Violation, ViolationKind, ViolationLedger,
};
use anmat_index::{BlockingPartition, KeyBlock, Placement};
use anmat_obs as obs;
use anmat_pattern::{CompiledConstrained, CompiledPattern, MatchMemo, PatternEngine};
use anmat_table::{
    ReclaimStats, RowId, RowIdRemap, RowOp, Schema, Table, TableError, TableSnapshot, Value,
    ValueId, ValuePool,
};
use fxhash::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// Engine thresholds (the drift monitor's discovery-style knobs) plus
/// the shard count the sharded engine and the CLI plumb through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Rows a rule must match before drift is judged.
    pub min_support: usize,
    /// Allowed violation ratio before a rule counts as drifted (mirrors
    /// `DiscoveryConfig::max_violation_ratio`).
    pub max_violation_ratio: f64,
    /// Worker shards for [`ShardedEngine`](crate::ShardedEngine)
    /// (`StreamEngine` itself is always single-threaded; `1` means "no
    /// extra workers"). Clamped to the rule count at engine build.
    pub shards: usize,
    /// Tombstone ratio (`dead slots / total slots`) above which the
    /// engine compacts automatically at the end of a mutation entry
    /// point (never mid-batch: op batches are validated against one id
    /// space). `<= 0.0` (the default) disables auto-compaction;
    /// [`StreamEngine::compact`] stays available manually either way.
    pub compact_ratio: f64,
    /// Which execution tier evaluates memo misses — fused-capable
    /// compiled bytecode (the default), the forced bytecode VM, or the
    /// AST interpreter (the measured baseline and the CLI's
    /// `--pattern-engine interp` flag). Violations, events, and eval
    /// counts are identical across tiers; only the per-distinct-value
    /// evaluation cost differs.
    pub pattern_engine: PatternEngine,
    /// Which axis the sharded engine partitions work on: whole rules
    /// (the default — each worker owns a disjoint rule subset) or hashed
    /// blocking keys (each worker owns a disjoint key range of *every*
    /// rule, so a single heavy rule spreads across all cores). Ignored
    /// by `StreamEngine`.
    pub shard_by: ShardBy,
    /// Cross-batch pipelining window for the sharded engine: how many
    /// submitted batches may be in flight (fanned out but not yet
    /// merged) before the coordinator merges the oldest. `0` (the
    /// default) restores the classic per-batch barrier. Merging is
    /// always in submission order, so event order is unaffected.
    /// Ignored by `StreamEngine`.
    pub run_ahead: usize,
    /// Tie string reclamation to the compaction epochs: the engine
    /// enables batch-granular [`ValuePool`] refcounting on its table and,
    /// at the end of every compaction barrier, frees interned strings no
    /// longer referenced by any live cell, blocking key, memo, or rule
    /// state. `false` (the default) keeps the classic append-only pool
    /// behaviour — nothing is ever freed. Reclamation is deferred (never
    /// skipped) while an [`EngineSnapshot`] is alive, since snapshots
    /// resolve ids against the shared pool.
    pub reclaim: bool,
}

/// The sharded engine's work-partitioning axis (see
/// [`StreamConfig::shard_by`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBy {
    /// Partition by rule: worker `w` owns a disjoint subset of rules and
    /// evaluates them over a full table replica. Zero routing cost, but
    /// one heavy rule is capped at one core.
    #[default]
    Rule,
    /// Partition by blocking key: every worker holds every rule, but only
    /// processes tuples whose derived key (or constant-tuple LHS value)
    /// hashes into the worker's slot range. The coordinator derives and
    /// ships keys, so pattern work is still paid once per distinct value.
    Key,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            min_support: 8,
            max_violation_ratio: 0.3,
            shards: 1,
            compact_ratio: 0.0,
            pattern_engine: PatternEngine::Fused,
            shard_by: ShardBy::Rule,
            run_ahead: 0,
            reclaim: false,
        }
    }
}

impl StreamConfig {
    /// Adopt the thresholds the rules were discovered with.
    #[must_use]
    pub fn from_discovery(config: &DiscoveryConfig) -> StreamConfig {
        StreamConfig {
            min_support: config.min_support,
            max_violation_ratio: config.max_violation_ratio,
            ..StreamConfig::default()
        }
    }
}

/// Lifetime compaction counters — what the CLI summary reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Compaction epochs run (manual and automatic).
    pub epochs: usize,
    /// Tombstoned slots reclaimed across all epochs.
    pub reclaimed_slots: usize,
}

/// Should a table with this tombstone census compact under `ratio`?
/// Shared by both engines so their auto-compaction points coincide —
/// part of the sharded determinism contract.
pub(crate) fn should_compact(ratio: f64, total_slots: usize, live_slots: usize) -> bool {
    let dead = total_slots - live_slots;
    ratio > 0.0 && dead > 0 && dead as f64 >= ratio * total_slots as f64
}

/// One violation assertion change produced by a rule's incremental
/// state. Rule processing emits deltas into a [`DeltaSink`]; *applying*
/// them to the refcounting [`ViolationLedger`] (which dedupes across
/// rules) is the owning engine's job — inline for `StreamEngine`, at the
/// merge step for `ShardedEngine`. This split is what lets rule state
/// live on worker threads while the ledger stays in one place.
#[derive(Debug, Clone)]
pub(crate) enum Delta {
    /// The rule now asserts this violation.
    Create(Violation),
    /// The rule withdraws this (previously asserted) violation.
    Retract(Violation),
}

/// Ordered deltas for one rule × one op phase, with the assertion
/// counts the drift monitor needs (counted per rule, independent of the
/// ledger's cross-rule refcounting).
#[derive(Debug, Default)]
pub(crate) struct DeltaSink {
    pub(crate) deltas: Vec<Delta>,
    pub(crate) created: usize,
    pub(crate) retracted: usize,
}

impl DeltaSink {
    fn create(&mut self, v: Violation) {
        self.created += 1;
        self.deltas.push(Delta::Create(v));
    }

    fn retract(&mut self, v: Violation) {
        self.retracted += 1;
        self.deltas.push(Delta::Retract(v));
    }
}

/// Replay a delta sequence into the ledger, collecting the events the
/// ledger actually emits (refcount-only changes emit nothing).
pub(crate) fn apply_deltas(
    ledger: &mut ViolationLedger,
    deltas: Vec<Delta>,
    events: &mut Vec<LedgerEvent>,
) {
    for delta in deltas {
        match delta {
            Delta::Create(v) => {
                if let Some(ev) = ledger.create(v) {
                    events.push(ev);
                }
            }
            Delta::Retract(v) => {
                if let Some(ev) = ledger.retract(&v) {
                    events.push(ev);
                }
            }
        }
    }
}

/// The table-shape of one [`RowOp`], for batch pre-validation.
pub(crate) enum OpShape {
    Insert { arity: usize },
    Delete { row: RowId },
    Update { row: RowId, arity: usize },
}

impl OpShape {
    pub(crate) fn of(op: &RowOp) -> OpShape {
        match op {
            RowOp::Insert(cells) => OpShape::Insert { arity: cells.len() },
            RowOp::Delete(row) => OpShape::Delete { row: *row },
            RowOp::Update(row, cells) => OpShape::Update {
                row: *row,
                arity: cells.len(),
            },
        }
    }
}

/// Validate a whole op batch against a simulation of `table`'s live set
/// (arity of every insert/update, liveness of every addressed row *at
/// its point in the sequence*) before any op executes — the atomicity
/// guarantee both engines give: a malformed op-log leaves the engine
/// untouched.
pub(crate) fn validate_shapes(
    table: &Table,
    shapes: impl IntoIterator<Item = OpShape>,
) -> Result<(), TableError> {
    let arity = table.schema().arity();
    let mut live: Vec<bool> = (0..table.row_count()).map(|r| table.is_live(r)).collect();
    for shape in shapes {
        match shape {
            OpShape::Insert { arity: found } => {
                if found != arity {
                    return Err(TableError::ArityMismatch {
                        row: live.len(),
                        found,
                        expected: arity,
                    });
                }
                live.push(true);
            }
            OpShape::Delete { row } => {
                if !live.get(row).copied().unwrap_or(false) {
                    return Err(TableError::NoSuchRow { row });
                }
                live[row] = false;
            }
            OpShape::Update { row, arity: found } => {
                if found != arity {
                    return Err(TableError::ArityMismatch {
                        row,
                        found,
                        expected: arity,
                    });
                }
                if !live.get(row).copied().unwrap_or(false) {
                    return Err(TableError::NoSuchRow { row });
                }
            }
        }
    }
    Ok(())
}

/// Incremental state for one constant tableau tuple.
#[derive(Debug)]
struct ConstantTuple {
    /// The LHS pattern compiled to bytecode (`None` = wildcard: every
    /// non-null LHS), shared via `Arc` so a rule's programs are compiled
    /// exactly once however many engines or shards hold its state. The
    /// source AST rides inside for the interpreter tier.
    compiled: Option<Arc<CompiledPattern>>,
    /// Per-`(pattern, ValueId)` match memo: the pattern is evaluated at
    /// most once per distinct LHS value, not once per row.
    memo: MatchMemo,
    /// Display form for violation evidence (matches batch output).
    display: String,
    /// The expected RHS constant, interned (agreement checks are id
    /// comparisons).
    expected: ValueId,
}

/// Incremental state for one variable tableau tuple.
#[derive(Debug)]
struct VariableTuple {
    /// Blocks keyed by constrained capture (whole value for wildcard LHS).
    partition: BlockingPartition,
    /// Display form for violation evidence.
    display: String,
    /// Per key: what this tuple currently asserts about the block.
    blocks: FxHashMap<ValueId, BlockState>,
}

/// The violations a variable tuple currently asserts for one block, plus
/// the majority/witness context they were built under.
///
/// Invariant: `violations` always equals what `flag_block_minority` would
/// return for the block — maintained by symmetric transition paths for
/// inserts and removals:
///
/// 1. **majority flip** (or first non-null RHS): every violation embeds
///    the majority value, so none survives — retract all, re-derive,
///    re-create ([`BlockState::rederive`], `O(block)`, rare after
///    warm-up);
/// 2. **witness churn** (a majority row enters the first-`MAX_WITNESSES`
///    window, or a witness is deleted): every violation's witness list
///    changes — rewrite each ([`BlockState::rewrite_witnesses`],
///    `O(live violations)`);
/// 3. **minority arrival**: append one violation (`O(1)` — the hot
///    path); **minority departure**: retract exactly that row's
///    violation (`O(live violations)` lookup);
/// 4. **off-window majority churn**: a majority row beyond the witness
///    window arrives or leaves — nothing moves (`O(1)`).
#[derive(Debug, Default)]
pub(crate) struct BlockState {
    majority: Option<ValueId>,
    witnesses: Vec<RowId>,
    violations: Vec<Violation>,
}

impl BlockState {
    /// Retract every asserted violation and re-derive the block from
    /// scratch via the shared batch primitive — the `O(block)` path for
    /// transitions that invalidate all context (majority flips, drained
    /// blocks, deleted witnesses).
    #[allow(clippy::too_many_arguments)]
    fn rederive(
        &mut self,
        table: &Table,
        pfd: &Pfd,
        lhs: usize,
        rhs: usize,
        display: &str,
        key: ValueId,
        block: &KeyBlock,
        sink: &mut DeltaSink,
    ) {
        for v in self.violations.drain(..) {
            sink.retract(v);
        }
        self.majority = block.majority_id();
        self.witnesses = match self.majority {
            Some(m) => block
                .rows_with_rhs_ids()
                .filter(|&(_, v)| v == m)
                .map(|(r, _)| r)
                .take(MAX_WITNESSES)
                .collect(),
            None => Vec::new(),
        };
        if block.len() >= 2 {
            self.violations =
                flag_block_minority(table, pfd, lhs, rhs, display, key.render(), block.rows());
            for v in &self.violations {
                sink.create(v.clone());
            }
        }
    }

    /// Swap in a new witness list, rewriting every asserted violation
    /// (each is retracted and re-created, since witnesses are part of
    /// its identity).
    fn rewrite_witnesses(&mut self, witnesses: Vec<RowId>, sink: &mut DeltaSink) {
        self.witnesses = witnesses;
        for v in &mut self.violations {
            sink.retract(v.clone());
            if let ViolationKind::Variable { witnesses, .. } = &mut v.kind {
                witnesses.clone_from(&self.witnesses);
            }
            sink.create(v.clone());
        }
    }

    /// Retract the single violation asserted for `row`, if any — the
    /// minority-departure fast path.
    fn retract_row(&mut self, row: RowId, sink: &mut DeltaSink) {
        if let Some(pos) = self.violations.iter().position(|v| v.row == row) {
            let v = self.violations.swap_remove(pos);
            sink.retract(v);
        }
    }

    /// Retract everything (the block drained to empty).
    fn drain(&mut self, sink: &mut DeltaSink) {
        for v in self.violations.drain(..) {
            sink.retract(v);
        }
    }

    /// Rewrite the asserted context into a new id space — witnesses and
    /// every asserted violation translate together, silently (no
    /// deltas: nothing changed liveness). The majority value is
    /// row-id-free and stays put.
    fn apply_remap(&mut self, remap: &RowIdRemap) {
        remap.remap_sorted_in_place(&mut self.witnesses);
        for v in &mut self.violations {
            v.remap(remap);
        }
    }
}

impl ConstantTuple {
    /// One row against this tuple: the memoized pattern gate plus the
    /// same `violation_at` primitive batch detection uses. Returns
    /// whether the LHS matched; on a match with a disagreeing RHS the
    /// violation is created (arrivals) or retracted (removals) into
    /// `sink`. Drift counts this rule's own assertion even when another
    /// rule already implied the same violation (the ledger refcounts
    /// those).
    #[allow(clippy::too_many_arguments)]
    fn process(
        &mut self,
        table: &Table,
        pfd: &Pfd,
        engine: PatternEngine,
        lhs: usize,
        rhs: usize,
        lhs_id: ValueId,
        row: RowId,
        removal: bool,
        sink: &mut DeltaSink,
    ) -> bool {
        let Some(value) = lhs_id.as_str() else {
            return false;
        };
        if let Some(c) = &self.compiled {
            if !self.memo.matches_with(c, engine, lhs_id.raw(), value) {
                return false;
            }
        }
        if let Some(v) = violation_at(table, pfd, &self.display, self.expected, lhs, rhs, row) {
            if removal {
                sink.retract(v);
            } else {
                sink.create(v);
            }
        }
        true
    }
}

impl VariableTuple {
    /// Post-placement insert transition: `row` has just joined `key`'s
    /// block; update the block's asserted majority/witness/violation
    /// context. Shared verbatim between rule-granular processing (where
    /// the partition derived `key` itself) and key-granular processing
    /// (where the coordinator shipped it) — one transition body is what
    /// keeps the two modes bit-for-bit identical.
    #[allow(clippy::too_many_arguments)]
    fn insert_transition(
        &mut self,
        table: &Table,
        pfd: &Pfd,
        lhs: usize,
        rhs: usize,
        rhs_id: ValueId,
        key: ValueId,
        row: RowId,
        sink: &mut DeltaSink,
    ) {
        let block = self.partition.block(key).expect("row just joined");
        let new_majority = block.majority_id();
        let state = self.blocks.entry(key).or_default();
        if new_majority != state.majority {
            // Majority flip (or first non-null RHS): every asserted
            // violation embeds the old majority, so none survives.
            state.rederive(table, pfd, lhs, rhs, &self.display, key, block, sink);
        } else if let Some(majority) = state.majority {
            if rhs_id == majority {
                // New majority row: does it enter the
                // first-`MAX_WITNESSES` window? Appends only grow a
                // non-full list, but an update can re-insert a *smaller*
                // row id that displaces the window's tail.
                let enters = state.witnesses.len() < MAX_WITNESSES
                    || state.witnesses.last().is_some_and(|&last| row < last);
                if enters {
                    let mut witnesses = state.witnesses.clone();
                    let pos = witnesses.partition_point(|&r| r < row);
                    witnesses.insert(pos, row);
                    witnesses.truncate(MAX_WITNESSES);
                    state.rewrite_witnesses(witnesses, sink);
                }
            } else if block.len() >= 2 {
                // Minority arrival — the hot path: one new violation,
                // nothing else moves.
                let v = minority_violation(
                    table,
                    pfd,
                    lhs,
                    rhs,
                    &self.display,
                    key.render(),
                    majority.render(),
                    &state.witnesses,
                    row,
                );
                sink.create(v.clone());
                state.violations.push(v);
            }
        }
        // new majority == old == None: all-null block, nothing to assert.
    }

    /// Post-placement removal transition: `row` has just left `key`'s
    /// block — the exact inverse of
    /// [`VariableTuple::insert_transition`], shared between both
    /// sharding modes the same way.
    #[allow(clippy::too_many_arguments)]
    fn removal_transition(
        &mut self,
        table: &Table,
        pfd: &Pfd,
        lhs: usize,
        rhs: usize,
        rhs_id: ValueId,
        key: ValueId,
        row: RowId,
        sink: &mut DeltaSink,
    ) {
        let Some(state) = self.blocks.get_mut(&key) else {
            return; // row never asserted into this block
        };
        match self.partition.block(key) {
            None => {
                // The block drained: nothing left to flag, forget its
                // state entirely.
                state.drain(sink);
                self.blocks.remove(&key);
            }
            Some(block) => {
                let new_majority = block.majority_id();
                if new_majority != state.majority {
                    // Majority flip (or last non-null RHS gone): full
                    // re-derive, exactly like the insert-side flip.
                    state.rederive(table, pfd, lhs, rhs, &self.display, key, block, sink);
                } else if let Some(majority) = state.majority {
                    if state.witnesses.binary_search(&row).is_ok() {
                        // A witness left: the next majority row in block
                        // order (if any) takes its slot.
                        let witnesses = block
                            .rows_with_rhs_ids()
                            .filter(|&(_, v)| v == majority)
                            .map(|(r, _)| r)
                            .take(MAX_WITNESSES)
                            .collect();
                        state.rewrite_witnesses(witnesses, sink);
                    } else if rhs_id != majority {
                        // Minority departure — the fast path: exactly the
                        // row's own violation goes.
                        state.retract_row(row, sink);
                    }
                    // Majority row beyond the witness window: nothing
                    // moves.
                }
                // Both majorities None: all-null block, nothing was
                // asserted.
            }
        }
    }
}

#[derive(Debug)]
enum TupleState {
    Constant(ConstantTuple),
    /// Boxed: the partition + block maps dwarf the constant variant.
    Variable(Box<VariableTuple>),
}

/// One seeded rule with its resolved columns and per-tuple state.
///
/// Rule state is fully self-contained (no ledger, no drift counters):
/// [`RuleState::process_insert`] / [`RuleState::process_removal`] read a
/// table and emit deltas, which is what lets a rule live on any worker
/// thread — and migrate between them on rebalance — while the engines
/// own the shared bookkeeping.
#[derive(Debug)]
pub(crate) struct RuleState {
    pub(crate) pfd: Pfd,
    /// `(lhs, rhs)` column indexes; `None` if the schema lacks either
    /// attribute (the rule is inert, exactly like batch detection).
    cols: Option<(usize, usize)>,
    tuples: Vec<TupleState>,
    /// Which execution tier memo misses run on; see
    /// [`StreamConfig::pattern_engine`].
    engine: PatternEngine,
}

/// The deltas one *owned* tableau tuple produced for one op under
/// key-granular processing, tagged with the tuple's tableau index.
///
/// In key mode a single rule's work for one row can land on several
/// workers (one per tuple the row's keys hash to), so deltas come back
/// per `(rule, tuple)` instead of per rule; the coordinator sorts the
/// merged entries by that pair to reproduce the single-threaded sink
/// order, then folds the `matched` bits and violation counts into one
/// drift tally per rule.
#[derive(Debug)]
pub(crate) struct TupleDeltas {
    /// Tableau index of the emitting tuple — when several consecutive
    /// owned tuples fuse into one entry, the first one's index (the
    /// fused deltas stay in tableau order internally, so sorting merged
    /// entries by this tag still reproduces the single-threaded order).
    pub(crate) tuple: usize,
    /// Did the row's LHS match this tuple (ORed across fused tuples)?
    pub(crate) matched: bool,
    /// The violation deltas, in single-threaded emission order.
    pub(crate) sink: DeltaSink,
}

impl TupleDeltas {
    /// Fold one more owned tuple's output into the running entry —
    /// legal only while no *other* worker can emit an entry between the
    /// fused tuples (the callers close the run at any tuple another
    /// worker owns).
    fn absorb(pending: &mut Option<TupleDeltas>, tuple: usize, matched: bool, sink: DeltaSink) {
        match pending {
            Some(p) => {
                p.matched |= matched;
                p.sink.created += sink.created;
                p.sink.retracted += sink.retracted;
                if p.sink.deltas.is_empty() {
                    p.sink.deltas = sink.deltas;
                } else {
                    p.sink.deltas.extend(sink.deltas);
                }
            }
            None => {
                *pending = Some(TupleDeltas {
                    tuple,
                    matched,
                    sink,
                });
            }
        }
    }

    /// Close the current fusion run (another worker may own the next
    /// tuple, so its entry must be sortable in between).
    fn flush(pending: &mut Option<TupleDeltas>, out: &mut Vec<TupleDeltas>) {
        if let Some(p) = pending.take() {
            out.push(p);
        }
    }
}

/// One tuple's extractable per-key state — the payload of the key-range
/// migration protocol (see [`RuleState::extract_keys`]).
#[derive(Debug)]
pub(crate) enum TupleKeySlice {
    /// Constant tuple: `(lhs id, matched?)` memo entries.
    Constant(Vec<(u32, bool)>),
    /// Variable tuple: `(key, block, asserted context)` triples.
    Variable(Vec<(ValueId, KeyBlock, BlockState)>),
}

impl TupleKeySlice {
    /// Is there anything to migrate in this slice?
    pub(crate) fn is_empty(&self) -> bool {
        match self {
            TupleKeySlice::Constant(entries) => entries.is_empty(),
            TupleKeySlice::Variable(entries) => entries.is_empty(),
        }
    }
}

/// One rule's per-tuple compiled programs — compiled exactly once per
/// rule and handed around as `Arc`s, so seeding rule state (on any
/// engine, any shard, any rebalance) never recompiles and
/// `pattern.compile_ns` counts each rule once regardless of `--shards N`.
#[derive(Debug, Clone)]
pub(crate) struct CompiledRule {
    programs: Vec<TupleProgram>,
}

/// The compiled program of one tableau tuple (`None` = wildcard LHS).
#[derive(Debug, Clone)]
enum TupleProgram {
    Constant(Option<Arc<CompiledPattern>>),
    Variable(Option<Arc<CompiledConstrained>>),
}

impl CompiledRule {
    /// The compiled key extractors of this rule's *variable* tuples, in
    /// tableau order (`None` = wildcard LHS, which blocks on the whole
    /// value). The coordinator of a key-granular sharded engine builds
    /// its routing memos from these, sharing the same `Arc`s the worker
    /// states hold.
    pub(crate) fn variable_keyers(&self) -> Vec<Option<Arc<CompiledConstrained>>> {
        self.programs
            .iter()
            .filter_map(|p| match p {
                TupleProgram::Variable(keyer) => Some(keyer.clone()),
                TupleProgram::Constant(_) => None,
            })
            .collect()
    }

    /// Compile every tuple's LHS program for `pfd`.
    pub(crate) fn compile(pfd: &Pfd) -> CompiledRule {
        let programs = pfd
            .tableau
            .iter()
            .map(|t| match (&t.rhs, &t.lhs) {
                (RhsCell::Constant(_), LhsCell::Pattern(q)) => {
                    TupleProgram::Constant(Some(Arc::new(CompiledPattern::compile(q.embedded()))))
                }
                (RhsCell::Constant(_), LhsCell::Wildcard) => TupleProgram::Constant(None),
                (RhsCell::Wildcard, LhsCell::Pattern(q)) => {
                    TupleProgram::Variable(Some(Arc::new(CompiledConstrained::compile(q))))
                }
                (RhsCell::Wildcard, LhsCell::Wildcard) => TupleProgram::Variable(None),
            })
            .collect();
        CompiledRule { programs }
    }
}

impl RuleState {
    /// Seed a rule, compiling its programs here (the single-engine
    /// convenience over [`RuleState::seed_shared`]).
    pub(crate) fn seed(pfd: Pfd, schema: &Schema, engine: PatternEngine) -> RuleState {
        let compiled = CompiledRule::compile(&pfd);
        RuleState::seed_shared(pfd, schema, engine, &compiled)
    }

    /// Seed a rule around already-compiled shared programs — the sharded
    /// engine's path (compile once on the coordinator, seed on whichever
    /// worker owns the rule).
    pub(crate) fn seed_shared(
        pfd: Pfd,
        schema: &Schema,
        engine: PatternEngine,
        compiled: &CompiledRule,
    ) -> RuleState {
        let cols = match (
            schema.index_of(&pfd.lhs_attr),
            schema.index_of(&pfd.rhs_attr),
        ) {
            (Some(lhs), Some(rhs)) => Some((lhs, rhs)),
            _ => None,
        };
        let tuples = pfd
            .tableau
            .iter()
            .zip(&compiled.programs)
            .map(|(t, program)| {
                let display = match &t.lhs {
                    LhsCell::Pattern(q) => q.to_string(),
                    LhsCell::Wildcard => "⊥".to_string(),
                };
                match (&t.rhs, program) {
                    (RhsCell::Constant(expected), TupleProgram::Constant(c)) => {
                        TupleState::Constant(ConstantTuple {
                            compiled: c.clone(),
                            memo: MatchMemo::new(),
                            display,
                            expected: ValuePool::intern(expected),
                        })
                    }
                    (RhsCell::Wildcard, TupleProgram::Variable(keyer)) => {
                        TupleState::Variable(Box::new(VariableTuple {
                            partition: BlockingPartition::with_shared(keyer.clone(), engine),
                            display,
                            blocks: FxHashMap::default(),
                        }))
                    }
                    _ => unreachable!("CompiledRule::compile mirrors the tableau shape"),
                }
            })
            .collect();
        RuleState {
            pfd,
            cols,
            tuples,
            engine,
        }
    }

    /// Batch-classify: warm every tuple's per-distinct-value cache over
    /// the LHS cells of a batch's insert/update rows in one tight pass,
    /// before any per-row work runs. Each *new* distinct id costs
    /// exactly the one evaluation the lazy path would have paid on first
    /// sighting, so [`RuleState::pattern_evals`] is invariant — priming
    /// is a locality optimization (one program, one cache, no per-row
    /// dispatch between evals), never extra work. No-op in interpreted
    /// mode (the baseline keeps the per-row lazy shape).
    pub(crate) fn prime_batch(&mut self, rows: &[&[ValueId]]) {
        if self.engine == PatternEngine::Interp {
            return;
        }
        let Some((lhs, _)) = self.cols else {
            return;
        };
        for tuple in &mut self.tuples {
            match tuple {
                TupleState::Constant(ct) => {
                    if let Some(c) = &ct.compiled {
                        ct.memo.prime_with(
                            c,
                            self.engine,
                            rows.iter().filter_map(|r| {
                                let id = r[lhs];
                                id.as_str().map(|s| (id.raw(), s))
                            }),
                        );
                    }
                }
                TupleState::Variable(vt) => {
                    vt.partition.prime(rows.iter().map(|r| r[lhs]));
                }
            }
        }
    }

    /// Incorporate one arrived row, emitting the violation deltas it
    /// causes for this rule. Returns whether the row's LHS matched any
    /// tableau tuple (the drift monitor's denominator bit); inert rules
    /// (missing columns) return `false` without touching the sink.
    pub(crate) fn process_insert(
        &mut self,
        table: &Table,
        row: RowId,
        sink: &mut DeltaSink,
    ) -> bool {
        let Some((lhs, rhs)) = self.cols else {
            return false;
        };
        let lhs_id = table.cell_id(row, lhs);
        let rhs_id = table.cell_id(row, rhs);
        let mut matched = false;
        for tuple in &mut self.tuples {
            match tuple {
                TupleState::Constant(ct) => {
                    matched |= ct.process(
                        table,
                        &self.pfd,
                        self.engine,
                        lhs,
                        rhs,
                        lhs_id,
                        row,
                        false,
                        sink,
                    );
                }
                TupleState::Variable(vt) => {
                    let Placement::Block(key) = vt.partition.insert(row, lhs_id, rhs_id) else {
                        continue;
                    };
                    matched = true;
                    vt.insert_transition(table, &self.pfd, lhs, rhs, rhs_id, key, row, sink);
                }
            }
        }
        matched
    }

    /// Withdraw one row from this rule's incremental state — the exact
    /// inverse of [`RuleState::process_insert`]. Must run *before* the
    /// table slot is tombstoned (or overwritten), while the row's cells
    /// are still the ones its violations were built from, so every
    /// retraction is structurally identical to the delta it cancels.
    pub(crate) fn process_removal(
        &mut self,
        table: &Table,
        row: RowId,
        sink: &mut DeltaSink,
    ) -> bool {
        let Some((lhs, rhs)) = self.cols else {
            return false;
        };
        let lhs_id = table.cell_id(row, lhs);
        let rhs_id = table.cell_id(row, rhs);
        let mut matched = false;
        for tuple in &mut self.tuples {
            match tuple {
                TupleState::Constant(ct) => {
                    // Rebuild the violation the arrival created (the
                    // check is the same id comparison; the memo makes
                    // the pattern free) and retract it.
                    matched |= ct.process(
                        table,
                        &self.pfd,
                        self.engine,
                        lhs,
                        rhs,
                        lhs_id,
                        row,
                        true,
                        sink,
                    );
                }
                TupleState::Variable(vt) => {
                    let Placement::Block(key) = vt.partition.remove(row, lhs_id) else {
                        continue;
                    };
                    matched = true;
                    vt.removal_transition(table, &self.pfd, lhs, rhs, rhs_id, key, row, sink);
                }
            }
        }
        matched
    }

    /// Key-granular [`RuleState::prime_batch`]: warm the constant
    /// tuples' match memos over the *owned* LHS ids only. Variable
    /// tuples are skipped entirely — in key mode the coordinator derives
    /// (and memoizes) blocking keys, so worker partitions never run the
    /// extractor. Each distinct LHS value is owned by exactly one
    /// worker, so summing worker memos still yields the single-threaded
    /// eval count.
    /// The rule's LHS column in the live schema (`None` = inert rule).
    /// Key-mode workers consult this to screen rules before any
    /// per-tuple work.
    pub(crate) fn lhs_col(&self) -> Option<usize> {
        self.cols.map(|(lhs, _)| lhs)
    }

    /// Whether the tableau holds any constant tuple — the only tuple
    /// kind whose key-mode ownership is decided by the row's LHS id
    /// rather than a coordinator-shipped route.
    pub(crate) fn has_constant_tuples(&self) -> bool {
        self.tuples
            .iter()
            .any(|t| matches!(t, TupleState::Constant(_)))
    }

    pub(crate) fn prime_batch_key(&mut self, rows: &[&[ValueId]], owns: &impl Fn(ValueId) -> bool) {
        if self.engine == PatternEngine::Interp {
            return;
        }
        let Some((lhs, _)) = self.cols else {
            return;
        };
        for tuple in &mut self.tuples {
            if let TupleState::Constant(ct) = tuple {
                if let Some(c) = &ct.compiled {
                    ct.memo.prime_with(
                        c,
                        self.engine,
                        rows.iter().filter_map(|r| {
                            let id = r[lhs];
                            if !owns(id) {
                                return None;
                            }
                            id.as_str().map(|s| (id.raw(), s))
                        }),
                    );
                }
            }
        }
    }

    /// Key-granular [`RuleState::process_insert`]: incorporate one
    /// arrived row, but only through the tuples this worker *owns* —
    /// constant tuples whose LHS id satisfies `owns`, and variable
    /// tuples whose coordinator-derived route key (one `Option<ValueId>`
    /// per variable tuple, tableau order, in `routes`) satisfies it.
    /// `None` routes (null or non-matching LHS) are skipped by every
    /// worker: no block forms, so nothing observable depends on them.
    ///
    /// Emits one [`TupleDeltas`] per owned tuple that matched (or
    /// produced deltas), tagged with the tuple's tableau index — the
    /// coordinator sorts merged entries by `(rule, tuple)` to reproduce
    /// the single-threaded sink order exactly.
    pub(crate) fn process_insert_key(
        &mut self,
        table: &Table,
        row: RowId,
        routes: &[Option<ValueId>],
        owns: &impl Fn(ValueId) -> bool,
        out: &mut Vec<TupleDeltas>,
    ) {
        let Some((lhs, rhs)) = self.cols else {
            return;
        };
        let lhs_id = table.cell_id(row, lhs);
        let rhs_id = table.cell_id(row, rhs);
        // One slot-map probe covers every constant tuple: they all key
        // on the same LHS id.
        let const_owned = owns(lhs_id);
        // Consecutive owned tuples fuse into one entry; a tuple another
        // worker owns closes the run (its entry must sort in between),
        // while tuples nobody processes (`None` routes) fuse across.
        let mut pending: Option<TupleDeltas> = None;
        let mut var_idx = 0;
        for (idx, tuple) in self.tuples.iter_mut().enumerate() {
            match tuple {
                TupleState::Constant(ct) => {
                    if !const_owned {
                        TupleDeltas::flush(&mut pending, out);
                        continue;
                    }
                    let mut sink = DeltaSink::default();
                    let matched = ct.process(
                        table,
                        &self.pfd,
                        self.engine,
                        lhs,
                        rhs,
                        lhs_id,
                        row,
                        false,
                        &mut sink,
                    );
                    if matched || !sink.deltas.is_empty() {
                        TupleDeltas::absorb(&mut pending, idx, matched, sink);
                    }
                }
                TupleState::Variable(vt) => {
                    let route = routes[var_idx];
                    var_idx += 1;
                    let Some(key) = route else {
                        continue;
                    };
                    if !owns(key) {
                        TupleDeltas::flush(&mut pending, out);
                        continue;
                    }
                    vt.partition.insert_with_key(row, key, rhs_id);
                    let mut sink = DeltaSink::default();
                    vt.insert_transition(table, &self.pfd, lhs, rhs, rhs_id, key, row, &mut sink);
                    TupleDeltas::absorb(&mut pending, idx, true, sink);
                }
            }
        }
        TupleDeltas::flush(&mut pending, out);
    }

    /// Key-granular [`RuleState::process_removal`] — the exact inverse
    /// of [`RuleState::process_insert_key`], with the same ownership and
    /// routing contract (the coordinator derives removal routes from the
    /// row's *pre-op* cells).
    pub(crate) fn process_removal_key(
        &mut self,
        table: &Table,
        row: RowId,
        routes: &[Option<ValueId>],
        owns: &impl Fn(ValueId) -> bool,
        out: &mut Vec<TupleDeltas>,
    ) {
        let Some((lhs, rhs)) = self.cols else {
            return;
        };
        let lhs_id = table.cell_id(row, lhs);
        let rhs_id = table.cell_id(row, rhs);
        let const_owned = owns(lhs_id);
        let mut pending: Option<TupleDeltas> = None;
        let mut var_idx = 0;
        for (idx, tuple) in self.tuples.iter_mut().enumerate() {
            match tuple {
                TupleState::Constant(ct) => {
                    if !const_owned {
                        TupleDeltas::flush(&mut pending, out);
                        continue;
                    }
                    let mut sink = DeltaSink::default();
                    let matched = ct.process(
                        table,
                        &self.pfd,
                        self.engine,
                        lhs,
                        rhs,
                        lhs_id,
                        row,
                        true,
                        &mut sink,
                    );
                    if matched || !sink.deltas.is_empty() {
                        TupleDeltas::absorb(&mut pending, idx, matched, sink);
                    }
                }
                TupleState::Variable(vt) => {
                    let route = routes[var_idx];
                    var_idx += 1;
                    let Some(key) = route else {
                        continue;
                    };
                    if !owns(key) {
                        TupleDeltas::flush(&mut pending, out);
                        continue;
                    }
                    vt.partition.remove_with_key(row, key);
                    let mut sink = DeltaSink::default();
                    vt.removal_transition(table, &self.pfd, lhs, rhs, rhs_id, key, row, &mut sink);
                    TupleDeltas::absorb(&mut pending, idx, true, sink);
                }
            }
        }
        TupleDeltas::flush(&mut pending, out);
    }

    /// Move out all per-key state whose key (`ValueId::raw`) satisfies
    /// `give_up` — one [`TupleKeySlice`] per tuple, tableau order. The
    /// key-range migration half of key-granular rebalancing: constant
    /// tuples surrender memo entries (keyed by LHS id), variable tuples
    /// surrender whole blocks with their asserted
    /// majority/witness/violation context. Eval counters stay put on
    /// both sides, so global eval tallies survive any rebalance.
    pub(crate) fn extract_keys(&mut self, give_up: &dyn Fn(u32) -> bool) -> Vec<TupleKeySlice> {
        self.tuples
            .iter_mut()
            .map(|tuple| match tuple {
                TupleState::Constant(ct) => TupleKeySlice::Constant(ct.memo.extract_if(give_up)),
                TupleState::Variable(vt) => {
                    let blocks = vt.partition.extract_blocks_if(|k| give_up(k.raw()));
                    TupleKeySlice::Variable(
                        blocks
                            .into_iter()
                            .map(|(key, block)| {
                                let state = vt.blocks.remove(&key).unwrap_or_default();
                                (key, block, state)
                            })
                            .collect(),
                    )
                }
            })
            .collect()
    }

    /// Install per-key state previously moved out by
    /// [`RuleState::extract_keys`] on another worker. `slices` must be
    /// tuple-aligned (same tableau, same order) — guaranteed because
    /// every key-mode worker seeds every rule from the same shared
    /// [`CompiledRule`].
    pub(crate) fn install_keys(&mut self, slices: Vec<TupleKeySlice>) {
        for (tuple, slice) in self.tuples.iter_mut().zip(slices) {
            match (tuple, slice) {
                (TupleState::Constant(ct), TupleKeySlice::Constant(entries)) => {
                    ct.memo.install(entries);
                }
                (TupleState::Variable(vt), TupleKeySlice::Variable(entries)) => {
                    for (key, block, state) in entries {
                        vt.partition.install_blocks([(key, block)]);
                        vt.blocks.insert(key, state);
                    }
                }
                _ => unreachable!("slice shape mirrors the tableau"),
            }
        }
    }

    /// Visit the key of every live block across this rule's variable
    /// tuples — the census hook key-granular rebalancing weighs hash
    /// ranges with.
    pub(crate) fn for_each_block_key(&self, f: &mut dyn FnMut(ValueId)) {
        for tuple in &self.tuples {
            if let TupleState::Variable(vt) = tuple {
                for key in vt.partition.block_keys() {
                    f(key);
                }
            }
        }
    }

    /// Apply a compaction [`RowIdRemap`] to this rule's incremental
    /// state — the rule's side of the remap protocol.
    ///
    /// Constant tuples hold no row references (their memo is keyed by
    /// value id) and are untouched. Variable tuples remap their
    /// partition's row lists and every block's asserted
    /// witnesses/violations in place. Nothing is re-derived and no
    /// pattern or capture evaluation runs, so
    /// [`RuleState::pattern_evals`] is invariant under remap — the
    /// protocol's cheapness guarantee, pinned by tests.
    pub(crate) fn apply_remap(&mut self, remap: &RowIdRemap) {
        for tuple in &mut self.tuples {
            match tuple {
                TupleState::Constant(_) => {}
                TupleState::Variable(vt) => {
                    vt.partition.apply_remap(remap);
                    for state in vt.blocks.values_mut() {
                        state.apply_remap(remap);
                    }
                }
            }
        }
    }

    /// Collect every [`ValueId`] this rule's incremental state holds
    /// *beyond* the table's live cells — ids that must survive a pool
    /// sweep even when no live cell references them:
    ///
    /// * constant tuples' interned `expected` RHS (rule metadata — it
    ///   may never appear in the data at all, or only in since-deleted
    ///   rows);
    /// * variable tuples' block keys (derived captures: `"90001" →
    ///   "900"` interns a string no cell holds) and asserted majority
    ///   ids (transitively live via block rows today, listed
    ///   belt-and-braces so the invariant doesn't depend on it).
    ///
    /// Memoized *negative* entries (keys for values that since left, the
    /// match memo's misses) are deliberately not protected — they are
    /// caches, purged by [`RuleState::purge_values`] instead.
    pub(crate) fn collect_protected(&self, out: &mut FxHashSet<u32>) {
        for tuple in &self.tuples {
            match tuple {
                TupleState::Constant(ct) => {
                    out.insert(ct.expected.raw());
                }
                TupleState::Variable(vt) => {
                    for key in vt.partition.block_keys() {
                        out.insert(key.raw());
                    }
                    for state in vt.blocks.values() {
                        if let Some(majority) = state.majority {
                            out.insert(majority.raw());
                        }
                    }
                }
            }
        }
    }

    /// Drop every memoized entry keyed on (or caching) an id in `dead`,
    /// ahead of the pool recycling those ids for different strings. See
    /// [`MatchMemo::purge`] and
    /// [`BlockingPartition::purge_cached_keys`] for why stale entries
    /// would otherwise answer for the wrong value. Counters stay put —
    /// a purge performs no pattern work.
    pub(crate) fn purge_values(&mut self, dead: &FxHashSet<u32>) {
        for tuple in &mut self.tuples {
            match tuple {
                TupleState::Constant(ct) => ct.memo.purge(|id| dead.contains(&id)),
                TupleState::Variable(vt) => vt
                    .partition
                    .purge_cached_keys(|id| dead.contains(&id.raw())),
            }
        }
    }

    /// Pattern evaluations this rule's memoized state performed —
    /// constant tuples' match memos plus variable tuples' capture
    /// extractions.
    pub(crate) fn pattern_evals(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| match t {
                TupleState::Constant(ct) => ct.memo.evals(),
                TupleState::Variable(vt) => vt.partition.key_evals(),
            })
            .sum()
    }

    /// Memo consultations (hits + misses) across this rule's tuples —
    /// the denominator that turns [`RuleState::pattern_evals`] into the
    /// hit rate the observability layer reports.
    pub(crate) fn pattern_lookups(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| match t {
                TupleState::Constant(ct) => ct.memo.lookups(),
                TupleState::Variable(vt) => vt.partition.key_lookups(),
            })
            .sum()
    }

    /// Blocks this rule currently maintains — the observed load figure
    /// shard rebalancing distributes by.
    pub(crate) fn block_count(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| match t {
                TupleState::Constant(_) => 0,
                TupleState::Variable(vt) => vt.partition.block_count(),
            })
            .sum()
    }

    /// A-priori load estimate for a rule that has seen no data yet:
    /// variable tuples maintain whole block partitions, constant tuples
    /// just a match memo — the seed weights the initial round-robin
    /// shard assignment sorts by.
    pub(crate) fn estimated_weight(pfd: &Pfd) -> usize {
        pfd.tableau
            .iter()
            .map(|t| match &t.rhs {
                RhsCell::Wildcard => 4,
                RhsCell::Constant(_) => 1,
            })
            .sum::<usize>()
            .max(1)
    }
}

/// A consistent copy-on-write view of a stream engine's observable
/// state, frozen at a batch boundary (see [`StreamEngine::snapshot`] /
/// [`ShardedEngine::snapshot`](crate::ShardedEngine::snapshot)).
///
/// The table view shares storage chunks with the live engine (copied
/// lazily, per chunk, on the engine's next write — never by the reader)
/// and the ledger view shares its live-violation map the same way, so
/// drift analysis, `detect_all` cross-checks, and serde checkpoints can
/// read a stable state while ingest continues on the live engine.
///
/// Holding a snapshot *pins string reclamation*: sweeps on the source
/// engine defer until every snapshot from it is dropped, so ids resolve
/// for the snapshot's whole lifetime. Compaction itself still runs —
/// the snapshot keeps pre-compaction coordinates, which is why it
/// carries the [`epoch`](EngineSnapshot::epoch) it was taken in.
#[derive(Debug)]
pub struct EngineSnapshot {
    table: TableSnapshot,
    ledger: LedgerSnapshot,
    epoch: u64,
    _pin: Arc<()>,
}

impl EngineSnapshot {
    /// Capture a snapshot from the engine-internal pieces — shared by
    /// [`StreamEngine::snapshot`] and the sharded engine (which freezes
    /// its coordinator-owned canonical table and ledger behind the same
    /// pipeline barrier its compactions use).
    pub(crate) fn capture(
        table: &Table,
        ledger: &ViolationLedger,
        pin: &Arc<()>,
    ) -> EngineSnapshot {
        obs::counter!("snapshot.engine_captures").incr();
        EngineSnapshot {
            table: table.snapshot(),
            ledger: ledger.freeze(),
            epoch: table.epoch(),
            _pin: Arc::clone(pin),
        }
    }

    /// The frozen table view.
    #[must_use]
    pub fn table(&self) -> &Table {
        self.table.table()
    }

    /// The frozen violation ledger.
    #[must_use]
    pub fn ledger(&self) -> &ViolationLedger {
        self.ledger.ledger()
    }

    /// The compaction epoch the snapshot was taken in — its `RowId`s
    /// are coordinates of this epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// The incremental PFD violation engine (see the crate docs).
#[derive(Debug)]
pub struct StreamEngine {
    table: Table,
    rules: Vec<RuleState>,
    ledger: ViolationLedger,
    drift: DriftMonitor,
    /// Auto-compaction threshold (see [`StreamConfig::compact_ratio`]).
    compact_ratio: f64,
    compaction: CompactionStats,
    /// Epoch-tied string reclamation (see [`StreamConfig::reclaim`]).
    reclaim: bool,
    /// Lifetime pool reclamation by this engine's sweeps.
    reclaim_stats: ReclaimStats,
    /// Snapshot pin: every live [`EngineSnapshot`] clones this `Arc`, so
    /// `strong_count > 1` ⇔ a snapshot may still resolve ids — sweeps
    /// defer (candidates stay queued in the table) until it drops.
    snap_pin: Arc<()>,
}

impl StreamEngine {
    /// An engine over `schema`, seeded with `rules`, default thresholds.
    #[must_use]
    pub fn new(schema: Schema, rules: Vec<Pfd>) -> StreamEngine {
        StreamEngine::with_config(schema, rules, StreamConfig::default())
    }

    /// An engine with explicit drift thresholds.
    #[must_use]
    pub fn with_config(schema: Schema, rules: Vec<Pfd>, config: StreamConfig) -> StreamEngine {
        let drift = DriftMonitor::new(rules.len(), config.min_support, config.max_violation_ratio);
        let states = rules
            .into_iter()
            .map(|pfd| RuleState::seed(pfd, &schema, config.pattern_engine))
            .collect();
        let mut table = Table::empty(schema);
        if config.reclaim {
            // Batch-granular refcounting: the table retains each cell id
            // on insert and releases on delete/overwrite, recording ids
            // whose count hit zero as sweep candidates for the next
            // compaction barrier.
            table.enable_refcounts();
        }
        StreamEngine {
            table,
            rules: states,
            ledger: ViolationLedger::new(),
            drift,
            compact_ratio: config.compact_ratio,
            compaction: CompactionStats::default(),
            reclaim: config.reclaim,
            reclaim_stats: ReclaimStats::default(),
            snap_pin: Arc::new(()),
        }
    }

    /// Compact the engine's table and thread the resulting
    /// [`RowIdRemap`] through every consumer — the remap protocol,
    /// end to end:
    ///
    /// 1. [`Table::compact`] drops tombstoned slots and opens a new
    ///    epoch;
    /// 2. every rule's blocking partition and asserted block context
    ///    translate in place (`RuleState::apply_remap` — no pattern
    ///    re-evaluation, [`StreamEngine::pattern_evals`] is invariant);
    /// 3. the ledger rewrites its live violations and adopts the epoch
    ///    (event history stays verbatim; see
    ///    [`LedgerEvent::epoch`](anmat_core::LedgerEvent)).
    ///
    /// Silent by design: no events are emitted, no drift counter moves —
    /// only coordinates change. Callers holding pre-compaction `RowId`s
    /// must translate them through the returned remap.
    pub fn compact(&mut self) -> RowIdRemap {
        let remap = self.table.compact();
        for rule in &mut self.rules {
            rule.apply_remap(&remap);
        }
        self.ledger.remap(&remap);
        self.compaction.epochs += 1;
        self.compaction.reclaimed_slots += remap.reclaimed();
        self.sweep_reclaimable();
        remap
    }

    /// The string-reclamation half of the compaction barrier (no-op
    /// unless [`StreamConfig::reclaim`]): free every interned string
    /// whose last table reference died since the previous sweep, unless
    /// rule state still needs it.
    ///
    /// The candidate set is exactly the ids the refcounting table
    /// recorded at their last release, filtered twice at the barrier:
    ///
    /// 1. **refcount recheck** — the string may have been re-inserted
    ///    (same id: interning is idempotent) after the release that
    ///    queued it;
    /// 2. **protection** — rule state holds ids beyond live cells
    ///    (constant RHS constants, derived block keys); see
    ///    [`RuleState::collect_protected`].
    ///
    /// Survivors are purged from every memo/key cache *before*
    /// [`ValuePool::reclaim`] queues them for recycling, so no cache can
    /// answer for a recycled id. While an [`EngineSnapshot`] is alive
    /// the whole sweep defers — candidates simply stay queued in the
    /// table for the next barrier.
    fn sweep_reclaimable(&mut self) {
        if !self.reclaim {
            return;
        }
        if Arc::strong_count(&self.snap_pin) > 1 {
            obs::counter!("pool.sweeps_deferred").incr();
            return;
        }
        let candidates = self.table.take_reclaim_candidates();
        if candidates.is_empty() {
            return;
        }
        let mut protected = FxHashSet::default();
        for rule in &self.rules {
            rule.collect_protected(&mut protected);
        }
        let doomed: Vec<ValueId> = candidates
            .into_iter()
            .filter(|id| ValuePool::refcount(*id) == 0 && !protected.contains(&id.raw()))
            .collect();
        if doomed.is_empty() {
            return;
        }
        let dead: FxHashSet<u32> = doomed.iter().map(|id| id.raw()).collect();
        for rule in &mut self.rules {
            rule.purge_values(&dead);
        }
        let stats = ValuePool::reclaim(doomed);
        self.reclaim_stats.strings += stats.strings;
        self.reclaim_stats.bytes += stats.bytes;
    }

    /// Lifetime pool reclamation this engine's sweeps performed.
    #[must_use]
    pub fn reclaim_stats(&self) -> ReclaimStats {
        self.reclaim_stats
    }

    /// Freeze a consistent copy-on-write view of the engine's observable
    /// state — table and ledger — that stays valid while ingest
    /// continues. Capture is `O(chunks + live violations)` handle
    /// clones (no cell is copied); subsequent engine mutations pay one
    /// chunk copy per first-touched chunk (`snapshot.cow_copies`).
    ///
    /// While the snapshot is alive, reclamation sweeps defer (the
    /// snapshot resolves ids against the shared pool), so every id it
    /// holds stays resolvable for its whole lifetime.
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot::capture(&self.table, &self.ledger, &self.snap_pin)
    }

    /// Auto-compaction hook: runs at the end of tombstoning entry
    /// points (never mid-batch — a validated op batch addresses one id
    /// space) when the tombstone ratio crosses
    /// [`StreamConfig::compact_ratio`].
    fn maybe_compact(&mut self) {
        if should_compact(
            self.compact_ratio,
            self.table.row_count(),
            self.table.live_rows(),
        ) {
            self.compact();
        }
    }

    /// The engine's compaction epoch (0 until the first compaction).
    /// Callers that cache `RowId`s can watch this to know when to
    /// refresh them.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.table.epoch()
    }

    /// Lifetime compaction counters (epochs run, slots reclaimed).
    #[must_use]
    pub fn compaction_stats(&self) -> CompactionStats {
        self.compaction
    }

    /// Ingest one row; returns the violation events it caused (creations
    /// and retractions), in rule/tableau order with retractions first
    /// within each affected block.
    ///
    /// Each cell is interned exactly once here; everything downstream
    /// (blocking, memoized matching, agreement checks) operates on `Copy`
    /// ids.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<Vec<LedgerEvent>, TableError> {
        let row_id = self.table.push_row(row)?;
        Ok(self.process_row(row_id))
    }

    /// Ingest one row of already-interned ids — the clone-free ingest
    /// path (no string is copied, hashed, or even read).
    pub fn push_id_row(&mut self, row: Vec<ValueId>) -> Result<Vec<LedgerEvent>, TableError> {
        let row_id = self.table.push_id_row(row)?;
        Ok(self.process_row(row_id))
    }

    /// Ingest one row of raw strings (fields go through
    /// [`Value::from_field`]).
    pub fn push_str_row<'a>(
        &mut self,
        row: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.push_row(row.into_iter().map(Value::from_field).collect())
    }

    /// Validate every row's arity before any row of a batch is ingested,
    /// so a malformed batch leaves the engine untouched and no emitted
    /// event is ever lost to an `Err`.
    fn validate_batch_arity<T>(&self, rows: &[Vec<T>]) -> Result<(), TableError> {
        let arity = self.table.schema().arity();
        for (offset, row) in rows.iter().enumerate() {
            if row.len() != arity {
                return Err(TableError::ArityMismatch {
                    row: self.table.row_count() + offset,
                    found: row.len(),
                    expected: arity,
                });
            }
        }
        Ok(())
    }

    /// Ingest a batch of rows; returns the concatenated events.
    ///
    /// Atomic with respect to errors: every row's arity is validated
    /// before any row is ingested, so a malformed batch leaves the
    /// engine untouched and no emitted event is ever lost to an `Err`.
    pub fn push_batch(
        &mut self,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        let _batch = obs::span!("engine.batch_ns");
        let rows: Vec<Vec<Value>> = rows.into_iter().collect();
        {
            let _validate = obs::span!("engine.validate_ns");
            self.validate_batch_arity(&rows)?;
        }
        let _apply = obs::span!("engine.apply_ns");
        obs::counter!("engine.ops").add(rows.len() as u64);
        // Intern once up front, then batch-classify each rule's caches
        // over the batch's new distinct ids before any per-row work.
        let rows: Vec<Vec<ValueId>> = rows
            .iter()
            .map(|r| ValuePool::intern_value_batch(r))
            .collect();
        self.prime_rules(&rows);
        let mut events = Vec::new();
        for row in rows {
            events.extend(self.push_id_row(row).expect("arity pre-validated"));
        }
        obs::counter!("engine.events").add(events.len() as u64);
        Ok(events)
    }

    /// Ingest a batch of already-interned rows; returns the concatenated
    /// events. Atomic with respect to errors like
    /// [`StreamEngine::push_batch`].
    pub fn push_id_batch(
        &mut self,
        rows: impl IntoIterator<Item = Vec<ValueId>>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        let _batch = obs::span!("engine.batch_ns");
        let rows: Vec<Vec<ValueId>> = rows.into_iter().collect();
        {
            let _validate = obs::span!("engine.validate_ns");
            self.validate_batch_arity(&rows)?;
        }
        let _apply = obs::span!("engine.apply_ns");
        obs::counter!("engine.ops").add(rows.len() as u64);
        self.prime_rules(&rows);
        let mut events = Vec::new();
        for row in rows {
            events.extend(self.push_id_row(row).expect("arity pre-validated"));
        }
        obs::counter!("engine.events").add(events.len() as u64);
        Ok(events)
    }

    /// Batch-classify: prime every rule's per-distinct-value caches over
    /// a batch's insert rows in one pass, ahead of the per-row loop (see
    /// [`RuleState::prime_batch`] — count-neutral by construction).
    fn prime_rules(&mut self, rows: &[Vec<ValueId>]) {
        let refs: Vec<&[ValueId]> = rows.iter().map(Vec::as_slice).collect();
        for rule in &mut self.rules {
            rule.prime_batch(&refs);
        }
    }

    /// Replay an existing table's *live* rows in row order (the table's
    /// schema must match the engine's; tombstoned slots are skipped, so
    /// the replayed state matches batch detection on the survivors —
    /// note the engine assigns fresh, dense slot ids). Clone-free: rows
    /// are carried over as interned ids.
    pub fn replay_table(&mut self, table: &Table) -> Result<Vec<LedgerEvent>, TableError> {
        let mut events = Vec::new();
        for r in table.iter_live() {
            events.extend(self.push_id_row(table.row_ids(r))?);
        }
        Ok(events)
    }

    fn process_row(&mut self, row: RowId) -> Vec<LedgerEvent> {
        let mut events = Vec::new();
        for (rule_idx, rule) in self.rules.iter_mut().enumerate() {
            let mut sink = DeltaSink::default();
            let matched = rule.process_insert(&self.table, row, &mut sink);
            self.drift
                .observe(rule_idx, matched, sink.created, sink.retracted);
            apply_deltas(&mut self.ledger, sink.deltas, &mut events);
        }
        events
    }

    /// Withdraw one row from every rule's incremental state — the exact
    /// inverse of `process_row`. Called *before* the table slot is
    /// tombstoned (or overwritten), while the row's cells are still the
    /// ones its violations were built from, so every retraction is
    /// structurally identical to the event it cancels.
    fn process_removal(&mut self, row: RowId) -> Vec<LedgerEvent> {
        let mut events = Vec::new();
        for (rule_idx, rule) in self.rules.iter_mut().enumerate() {
            let mut sink = DeltaSink::default();
            let matched = rule.process_removal(&self.table, row, &mut sink);
            self.drift
                .retire(rule_idx, matched, sink.created, sink.retracted);
            apply_deltas(&mut self.ledger, sink.deltas, &mut events);
        }
        events
    }

    /// Delete one live row; returns the retractions it causes (plus any
    /// creations where a block's majority flipped). Cost is
    /// `O(tableau)` for constant tuples and `O(affected block)` for
    /// variable tuples — never `O(table)`. The slot is tombstoned, so
    /// every other `RowId` stays valid — until auto-compaction (if
    /// enabled) crosses its threshold at the end of this call and
    /// renumbers; watch [`StreamEngine::epoch`].
    pub fn delete_row(&mut self, row: RowId) -> Result<Vec<LedgerEvent>, TableError> {
        let events = self.delete_row_inner(row)?;
        self.maybe_compact();
        Ok(events)
    }

    /// The delete without the auto-compaction check — what batch
    /// replay uses, so compaction can never strike in the middle of a
    /// pre-validated op sequence.
    fn delete_row_inner(&mut self, row: RowId) -> Result<Vec<LedgerEvent>, TableError> {
        if !self.table.is_live(row) {
            return Err(TableError::NoSuchRow { row });
        }
        let events = self.process_removal(row);
        self.table.delete_row(row).expect("liveness checked");
        Ok(events)
    }

    /// Update one live row in place — delete + insert *fused on one
    /// slot*, so the caller gets a single event batch (old assertions
    /// retracted, new ones created) and the row keeps its `RowId`.
    pub fn update_row(
        &mut self,
        row: RowId,
        cells: Vec<Value>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        self.update_id_row(row, cells.iter().map(ValuePool::intern_value).collect())
    }

    /// Update one live row with already-interned ids (the clone-free
    /// counterpart of [`StreamEngine::update_row`]).
    pub fn update_id_row(
        &mut self,
        row: RowId,
        cells: Vec<ValueId>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        if cells.len() != self.table.schema().arity() {
            return Err(TableError::ArityMismatch {
                row,
                found: cells.len(),
                expected: self.table.schema().arity(),
            });
        }
        if !self.table.is_live(row) {
            return Err(TableError::NoSuchRow { row });
        }
        let mut events = self.process_removal(row);
        self.table
            .update_id_row(row, cells)
            .expect("arity and liveness checked");
        events.extend(self.process_row(row));
        Ok(events)
    }

    /// Apply a batch of [`RowOp`]s; returns the concatenated events.
    ///
    /// Atomic with respect to errors, like the push-batch entry points:
    /// the whole batch is validated against a simulation of the
    /// engine's live set (arity of every insert/update, liveness of
    /// every addressed row *at its point in the sequence*) before any
    /// op executes, so a malformed op-log leaves the engine untouched.
    pub fn apply(
        &mut self,
        ops: impl IntoIterator<Item = RowOp>,
    ) -> Result<Vec<LedgerEvent>, TableError> {
        let _batch = obs::span!("engine.batch_ns");
        let ops: Vec<RowOp> = ops.into_iter().collect();
        {
            let _validate = obs::span!("engine.validate_ns");
            validate_shapes(&self.table, ops.iter().map(OpShape::of))?;
        }
        let _apply = obs::span!("engine.apply_ns");
        obs::counter!("engine.ops").add(ops.len() as u64);
        // Batch-classify over the insert/update rows before any op
        // executes (the per-op path below re-interns each cell, which is
        // a pool hash hit once this pass has interned it).
        let arriving: Vec<Vec<ValueId>> = ops
            .iter()
            .filter_map(|op| match op {
                RowOp::Insert(cells) | RowOp::Update(_, cells) => {
                    Some(ValuePool::intern_value_batch(cells))
                }
                RowOp::Delete(_) => None,
            })
            .collect();
        self.prime_rules(&arriving);
        let mut events = Vec::new();
        for op in ops {
            // Inner variants: the whole batch addresses one id space, so
            // the auto-compaction check waits until after the loop.
            let batch = match op {
                RowOp::Insert(cells) => self.push_row(cells),
                RowOp::Delete(row) => self.delete_row_inner(row),
                RowOp::Update(row, cells) => self.update_row(row, cells),
            };
            events.extend(batch.expect("ops pre-validated"));
        }
        self.maybe_compact();
        obs::counter!("engine.events").add(events.len() as u64);
        Ok(events)
    }

    /// The ledger of live violations.
    #[must_use]
    pub fn ledger(&self) -> &ViolationLedger {
        &self.ledger
    }

    /// The accumulated table.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Row *slots* ingested so far (tombstoned ones included).
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.table.row_count()
    }

    /// Rows currently live (ingested minus deleted) — what summaries
    /// should report.
    #[must_use]
    pub fn live_rows(&self) -> usize {
        self.table.live_rows()
    }

    /// The seeded rules, in index order.
    pub fn rules(&self) -> impl Iterator<Item = &Pfd> {
        self.rules.iter().map(|r| &r.pfd)
    }

    /// Total pattern evaluations performed across all rules — constant
    /// tuples' memoized matches plus variable tuples' capture
    /// extractions. Bounded by `Σ_tuple distinct(LHS column)` regardless
    /// of row count: the call-counting hook behind the "at most one
    /// evaluation per (pattern, distinct value)" guarantee.
    #[must_use]
    pub fn pattern_evals(&self) -> usize {
        self.rules.iter().map(RuleState::pattern_evals).sum()
    }

    /// Total memo consultations (hits + misses) across all rules — the
    /// denominator for the memoization hit rate:
    /// `1 − pattern_evals / pattern_lookups`.
    #[must_use]
    pub fn pattern_lookups(&self) -> usize {
        self.rules.iter().map(RuleState::pattern_lookups).sum()
    }

    /// Publish the engine's derived state into the global metrics
    /// registry as gauges: table slots/live/bytes, pool bytes/strings,
    /// memo lookup/eval totals, block counts, ledger totals, and
    /// compaction counters.
    ///
    /// Pull-based by design: per-row hot paths never touch these — the
    /// caller (CLI summary, `--stats-every` ticks, benches) decides the
    /// refresh cadence. A no-op while the recorder is disabled.
    pub fn publish_metrics(&self) {
        if !obs::enabled() {
            return;
        }
        let table = self.table.mem_footprint();
        obs::gauge!("table.slots").set(table.total_slots as i64);
        obs::gauge!("table.live").set(table.live_slots as i64);
        obs::gauge!("table.bytes").set(table.bytes as i64);
        let pool = ValuePool::mem_footprint();
        obs::gauge!("pool.bytes").set(pool.bytes as i64);
        obs::gauge!("pool.strings").set(pool.strings as i64);
        obs::gauge!("pool.string_bytes").set(pool.string_bytes as i64);
        obs::gauge!("engine.rules").set(self.rules.len() as i64);
        obs::gauge!("engine.blocks")
            .set(self.rules.iter().map(RuleState::block_count).sum::<usize>() as i64);
        obs::gauge!("memo.evals").set(self.pattern_evals() as i64);
        obs::gauge!("memo.lookups").set(self.pattern_lookups() as i64);
        obs::gauge!("ledger.live").set(self.ledger.live_count() as i64);
        obs::gauge!("ledger.created_total").set(self.ledger.created_total() as i64);
        obs::gauge!("ledger.retracted_total").set(self.ledger.retracted_total() as i64);
        obs::gauge!("engine.compaction_epochs").set(self.compaction.epochs as i64);
        obs::gauge!("engine.reclaimed_slots").set(self.compaction.reclaimed_slots as i64);
        // Reclamation: live vs cumulatively-freed pool state (gauges —
        // the matching `pool.reclaims`/`pool.reclaimed_*` *counters*
        // move inside `ValuePool::reclaim` itself), plus what this
        // engine's sweeps freed.
        obs::gauge!("pool.live_strings").set(ValuePool::live_strings() as i64);
        let (freed_strings, freed_bytes) = ValuePool::reclaimed();
        obs::gauge!("pool.freed_strings").set(freed_strings as i64);
        obs::gauge!("pool.freed_bytes").set(freed_bytes as i64);
        obs::gauge!("engine.reclaimed_strings").set(self.reclaim_stats.strings as i64);
        obs::gauge!("engine.reclaimed_bytes").set(self.reclaim_stats.bytes as i64);
    }

    /// Streaming health counters for one rule.
    #[must_use]
    pub fn rule_health(&self, rule: usize) -> RuleHealth {
        self.drift.health(rule)
    }

    /// Rules whose live confidence decayed below the discovery threshold
    /// — candidates for demotion to `RuleStatus::Pending`.
    ///
    /// Rule-index order is part of the API contract (consumers key the
    /// `anmat rules` listing off it), so it is enforced with an explicit
    /// sort rather than left as a side effect of how the reports happen
    /// to be gathered.
    #[must_use]
    pub fn drift_report(&self) -> Vec<DriftReport> {
        let mut reports: Vec<DriftReport> = self
            .rules
            .iter()
            .enumerate()
            .filter_map(|(i, r)| self.drift.judge(i, r.pfd.embedded_fd()))
            .collect();
        reports.sort_by_key(|r| r.rule);
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_core::{detect_all, PatternTuple, ViolationKind};
    use anmat_pattern::ConstrainedPattern;

    fn q(s: &str) -> ConstrainedPattern {
        s.parse().unwrap()
    }

    fn zip_variable_pfd() -> Pfd {
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::variable(q("[\\D{3}]\\D{2}"))],
        )
    }

    fn zip_constant_pfd() -> Pfd {
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::constant(
                ConstrainedPattern::unconstrained("900\\D{2}".parse().unwrap()),
                "Los Angeles",
            )],
        )
    }

    fn schema() -> Schema {
        Schema::new(["zip", "city"]).unwrap()
    }

    #[test]
    fn constant_violation_on_arrival() {
        let mut engine = StreamEngine::new(schema(), vec![zip_constant_pfd()]);
        assert!(engine
            .push_str_row(["90001", "Los Angeles"])
            .unwrap()
            .is_empty());
        let events = engine.push_str_row(["90004", "New York"]).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].is_created());
        assert_eq!(events[0].violation().row, 1);
        // Non-matching zips are ignored.
        assert!(engine
            .push_str_row(["10001", "New York"])
            .unwrap()
            .is_empty());
        assert_eq!(engine.ledger().live_count(), 1);
    }

    #[test]
    fn variable_violation_needs_a_block_peer() {
        let mut engine = StreamEngine::new(schema(), vec![zip_variable_pfd()]);
        assert!(engine
            .push_str_row(["90001", "Los Angeles"])
            .unwrap()
            .is_empty());
        // Second row disagrees: 1–1 tie, lexicographic majority wins and
        // the other row is flagged.
        let events = engine.push_str_row(["90002", "New York"]).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].is_created());
    }

    #[test]
    fn majority_flip_retracts_and_reflags() {
        let mut engine = StreamEngine::new(schema(), vec![zip_variable_pfd()]);
        engine.push_str_row(["90001", "Los Angeles"]).unwrap();
        engine.push_str_row(["90002", "New York"]).unwrap();
        // Tie broken lexicographically: majority "Los Angeles", row 1
        // flagged.
        assert_eq!(engine.ledger().snapshot()[0].row, 1);
        // Two more New York rows flip the majority: row 1's violation is
        // retracted, row 0 becomes the minority.
        let events = engine.push_str_row(["90003", "New York"]).unwrap();
        let retractions: Vec<_> = events.iter().filter(|e| !e.is_created()).collect();
        assert_eq!(retractions.len(), 1);
        assert_eq!(retractions[0].violation().row, 1);
        let live = engine.ledger().snapshot();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].row, 0);
        match &live[0].kind {
            ViolationKind::Variable { majority, .. } => assert_eq!(majority, "New York"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(engine.ledger().retracted_total() >= 1);
    }

    #[test]
    fn final_state_matches_batch_detection() {
        let rules = vec![zip_constant_pfd(), zip_variable_pfd()];
        let rows = [
            ["90001", "Los Angeles"],
            ["90002", "Los Angeles"],
            ["90003", "Los Angeles"],
            ["90004", "New York"],
            ["10001", "New York"],
            ["10002", "Boston"],
        ];
        let mut engine = StreamEngine::new(schema(), rules.clone());
        for row in rows {
            engine.push_str_row(row).unwrap();
        }
        let batch = detect_all(engine.table(), &rules);
        let mut streamed = engine.ledger().snapshot();
        let mut batch = batch;
        let key = |v: &Violation| serde_json::to_string(v).unwrap();
        streamed.sort_by_key(|v| key(v));
        batch.sort_by_key(|v| key(v));
        batch.dedup();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn missing_columns_leave_rule_inert() {
        let pfd = Pfd::new(
            "R",
            "nope",
            "city",
            vec![PatternTuple::variable(q("[\\A*]"))],
        );
        let mut engine = StreamEngine::new(schema(), vec![pfd]);
        assert!(engine.push_str_row(["90001", "LA"]).unwrap().is_empty());
        assert_eq!(engine.rule_health(0).matched_rows, 0);
    }

    #[test]
    fn config_adopts_discovery_thresholds() {
        let discovery = anmat_core::DiscoveryConfig {
            min_support: 5,
            max_violation_ratio: 0.05,
            ..anmat_core::DiscoveryConfig::default()
        };
        let config = StreamConfig::from_discovery(&discovery);
        assert_eq!(config.min_support, 5);
        assert!((config.max_violation_ratio - 0.05).abs() < 1e-12);
    }

    #[test]
    fn drift_flags_decayed_rule() {
        let config = StreamConfig {
            min_support: 4,
            max_violation_ratio: 0.3,
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::with_config(schema(), vec![zip_constant_pfd()], config);
        for i in 0..10 {
            let zip = format!("900{i:02}");
            engine.push_str_row([zip.as_str(), "San Diego"]).unwrap();
        }
        let report = engine.drift_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].dependency, "zip → city");
        assert_eq!(report[0].live_violations, 10);
        assert!(report[0].confidence < report[0].min_confidence);
    }

    #[test]
    fn duplicate_rules_keep_symmetric_drift_health() {
        // Two identical rules imply the same violations; the ledger
        // refcounts them to one live copy, but each rule's drift health
        // must count its own assertions — and stay balanced when a
        // majority flip retracts them.
        let rules = vec![zip_variable_pfd(), zip_variable_pfd()];
        let mut engine = StreamEngine::new(schema(), rules);
        engine.push_str_row(["90001", "Los Angeles"]).unwrap();
        engine.push_str_row(["90002", "New York"]).unwrap();
        engine.push_str_row(["90003", "New York"]).unwrap();
        engine.push_str_row(["90004", "New York"]).unwrap();
        assert_eq!(engine.ledger().live_count(), 1);
        let (h0, h1) = (engine.rule_health(0), engine.rule_health(1));
        assert_eq!(h0, h1, "identical rules must report identical health");
        assert_eq!(h0.live_violations, 1);
        assert!(h0.confidence() > 0.7);
    }

    #[test]
    fn push_batch_is_atomic_on_arity_error() {
        let mut engine = StreamEngine::new(schema(), vec![zip_constant_pfd()]);
        let bad_batch = vec![
            vec![Value::from_field("90001"), Value::from_field("New York")],
            vec![Value::from_field("oops")], // wrong arity
        ];
        assert!(engine.push_batch(bad_batch).is_err());
        // Nothing from the batch was ingested: no rows, no silent events.
        assert_eq!(engine.row_count(), 0);
        assert!(engine.ledger().is_empty());
    }

    #[test]
    fn push_batch_concatenates_events() {
        let mut engine = StreamEngine::new(schema(), vec![zip_constant_pfd()]);
        let rows: Vec<Vec<Value>> = [["90001", "New York"], ["90002", "Boston"]]
            .iter()
            .map(|r| r.iter().map(|s| Value::from_field(s)).collect())
            .collect();
        let events = engine.push_batch(rows).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(engine.row_count(), 2);
    }

    #[test]
    fn delete_retracts_constant_violation() {
        let mut engine = StreamEngine::new(schema(), vec![zip_constant_pfd()]);
        engine.push_str_row(["90001", "Los Angeles"]).unwrap();
        engine.push_str_row(["90004", "New York"]).unwrap();
        assert_eq!(engine.ledger().live_count(), 1);
        let events = engine.delete_row(1).unwrap();
        assert_eq!(events.len(), 1);
        assert!(!events[0].is_created());
        assert_eq!(events[0].violation().row, 1);
        assert!(engine.ledger().is_empty());
        assert_eq!(engine.live_rows(), 1);
        assert_eq!(engine.row_count(), 2);
        // The rule's drift health shrank with the stream.
        assert_eq!(engine.rule_health(0).matched_rows, 1);
        assert_eq!(engine.rule_health(0).live_violations, 0);
    }

    #[test]
    fn delete_of_majority_rows_flips_the_block() {
        let mut engine = StreamEngine::new(schema(), vec![zip_variable_pfd()]);
        engine.push_str_row(["90001", "Los Angeles"]).unwrap();
        engine.push_str_row(["90002", "New York"]).unwrap();
        engine.push_str_row(["90003", "New York"]).unwrap();
        // Majority "New York"; row 0 is the minority.
        assert_eq!(engine.ledger().snapshot()[0].row, 0);
        // Deleting both New York rows flips the majority to Los
        // Angeles: row 0's violation retracts, nothing remains to flag.
        engine.delete_row(1).unwrap();
        let events = engine.delete_row(2).unwrap();
        assert!(events.iter().any(|e| !e.is_created()));
        assert!(engine.ledger().is_empty());
        assert_eq!(engine.live_rows(), 1);
    }

    #[test]
    fn delete_errors_are_safe() {
        let mut engine = StreamEngine::new(schema(), vec![zip_variable_pfd()]);
        engine.push_str_row(["90001", "Los Angeles"]).unwrap();
        assert!(matches!(
            engine.delete_row(7),
            Err(TableError::NoSuchRow { row: 7 })
        ));
        engine.delete_row(0).unwrap();
        assert!(matches!(
            engine.delete_row(0),
            Err(TableError::NoSuchRow { row: 0 })
        ));
        assert!(matches!(
            engine.update_row(0, vec![Value::text("x"), Value::text("y")]),
            Err(TableError::NoSuchRow { row: 0 })
        ));
    }

    #[test]
    fn update_fuses_delete_and_insert_on_one_slot() {
        let mut engine = StreamEngine::new(schema(), vec![zip_variable_pfd()]);
        engine.push_str_row(["90001", "Los Angeles"]).unwrap();
        engine.push_str_row(["90002", "Los Angeles"]).unwrap();
        engine.push_str_row(["90003", "New York"]).unwrap();
        // Row 2 is the minority.
        assert_eq!(engine.ledger().snapshot()[0].row, 2);
        // Correcting it in place retracts the violation in the same
        // event batch; the slot keeps its id.
        let events = engine
            .update_row(2, vec![Value::text("90003"), Value::text("Los Angeles")])
            .unwrap();
        assert!(events.iter().any(|e| !e.is_created()));
        assert!(engine.ledger().is_empty());
        assert_eq!(engine.row_count(), 3);
        assert_eq!(engine.live_rows(), 3);
        assert_eq!(engine.table().cell_str(2, 1), Some("Los Angeles"));
        // And making it wrong again re-creates a fresh violation.
        let events = engine
            .update_row(2, vec![Value::text("90003"), Value::text("Boston")])
            .unwrap();
        assert!(events.iter().any(LedgerEvent::is_created));
        assert_eq!(engine.ledger().live_count(), 1);
    }

    #[test]
    fn apply_replays_an_op_log() {
        let mut engine = StreamEngine::new(schema(), vec![zip_variable_pfd()]);
        let ops = vec![
            RowOp::Insert(vec![Value::text("90001"), Value::text("Los Angeles")]),
            RowOp::Insert(vec![Value::text("90002"), Value::text("Los Angeles")]),
            RowOp::Insert(vec![Value::text("90003"), Value::text("New York")]),
            RowOp::Update(2, vec![Value::text("90003"), Value::text("Los Angeles")]),
            RowOp::Delete(0),
        ];
        let events = engine.apply(ops).unwrap();
        // Row 2 was flagged on arrival and cleared by the update.
        assert!(events.iter().any(LedgerEvent::is_created));
        assert!(events.iter().any(|e| !e.is_created()));
        assert!(engine.ledger().is_empty());
        assert_eq!(engine.live_rows(), 2);
        assert_eq!(engine.row_count(), 3);
    }

    #[test]
    fn apply_is_atomic_on_invalid_ops() {
        let mut engine = StreamEngine::new(schema(), vec![zip_variable_pfd()]);
        engine.push_str_row(["90001", "Los Angeles"]).unwrap();
        // The second op deletes a row the first op already deleted.
        let bad = vec![RowOp::Delete(0), RowOp::Delete(0)];
        assert!(matches!(
            engine.apply(bad),
            Err(TableError::NoSuchRow { row: 0 })
        ));
        assert_eq!(engine.live_rows(), 1, "nothing applied");
        // An insert makes a later delete of the fresh slot valid.
        let good = vec![
            RowOp::Insert(vec![Value::text("90002"), Value::text("Los Angeles")]),
            RowOp::Delete(1),
        ];
        engine.apply(good).unwrap();
        assert_eq!(engine.live_rows(), 1);
        // Arity of an update is validated before anything runs.
        let bad_arity = vec![
            RowOp::Delete(0),
            RowOp::Update(0, vec![Value::text("just-one")]),
        ];
        assert!(matches!(
            engine.apply(bad_arity),
            Err(TableError::ArityMismatch { .. })
        ));
        assert_eq!(engine.live_rows(), 1);
    }

    #[test]
    fn compact_remaps_live_violations_and_keeps_detection_exact() {
        let mut engine = StreamEngine::new(schema(), vec![zip_variable_pfd(), zip_constant_pfd()]);
        for (zip, city) in [
            ("90001", "Los Angeles"),
            ("90002", "Los Angeles"),
            ("90003", "Los Angeles"),
            ("90004", "New York"), // flagged by both rules
        ] {
            engine.push_str_row([zip, city]).unwrap();
        }
        engine.delete_row(0).unwrap();
        engine.delete_row(2).unwrap();
        let evals_before = engine.pattern_evals();
        let remap = engine.compact();
        // Survivors 1, 3 → 0, 1; no pattern work was repeated.
        assert_eq!(remap.reclaimed(), 2);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.ledger().epoch(), 1);
        assert_eq!(
            engine.pattern_evals(),
            evals_before,
            "compaction must not re-evaluate patterns"
        );
        assert_eq!(engine.compaction_stats().epochs, 1);
        assert_eq!(engine.compaction_stats().reclaimed_slots, 2);
        let snap = engine.ledger().snapshot();
        assert!(snap.iter().all(|v| v.row == 1), "flagged row remapped");
        // The remapped ledger equals batch detection over the compacted
        // table — the protocol's correctness contract.
        let rules: Vec<Pfd> = engine.rules().cloned().collect();
        let mut batch = detect_all(engine.table(), &rules);
        let key = |v: &Violation| serde_json::to_string(v).unwrap();
        batch.sort_by_key(|v| key(v));
        batch.dedup();
        let mut streamed = snap;
        streamed.sort_by_key(|v| key(v));
        assert_eq!(streamed, batch);
        // The engine keeps working in the new id space: deleting the
        // remapped minority row retracts both rules' violations.
        let events = engine.delete_row(1).unwrap();
        assert!(events.iter().all(|e| !e.is_created()));
        assert_eq!(events.iter().map(|e| e.epoch).max(), Some(1));
        assert!(engine.ledger().is_empty());
        assert_eq!(engine.live_rows(), 1);
    }

    #[test]
    fn auto_compaction_triggers_on_the_configured_ratio() {
        let config = StreamConfig {
            compact_ratio: 0.5,
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::with_config(schema(), vec![zip_variable_pfd()], config);
        for i in 0..8 {
            let zip = format!("900{i:02}");
            engine.push_str_row([zip.as_str(), "Los Angeles"]).unwrap();
        }
        // Three deletes: 3/8 < 0.5, no compaction yet.
        for row in 0..3 {
            engine.delete_row(row).unwrap();
        }
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.row_count(), 8);
        // Fourth delete crosses 4/8 >= 0.5: compaction runs at the end
        // of the call, slots shrink to the live rows.
        engine.delete_row(3).unwrap();
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.row_count(), 4);
        assert_eq!(engine.live_rows(), 4);
        assert_eq!(engine.compaction_stats().reclaimed_slots, 4);
        // Slots stay bounded by live rows for the rest of the run.
        assert!(engine.row_count() <= 2 * engine.live_rows());
    }

    #[test]
    fn auto_compaction_waits_for_the_batch_boundary() {
        let config = StreamConfig {
            compact_ratio: 0.3,
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::with_config(schema(), vec![zip_variable_pfd()], config);
        let mut ops: Vec<RowOp> = (0..6)
            .map(|i| RowOp::Insert(vec![Value::text(format!("900{i:02}")), Value::text("LA")]))
            .collect();
        // Deletes address pre-batch id space even though the ratio
        // crosses the threshold partway through.
        ops.extend([RowOp::Delete(0), RowOp::Delete(2), RowOp::Delete(4)]);
        engine.apply(ops).unwrap();
        // One compaction, after the whole batch.
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.compaction_stats().epochs, 1);
        assert_eq!(engine.row_count(), 3);
        assert_eq!(engine.live_rows(), 3);
        assert_eq!(
            engine.table().cell_str(0, 0),
            Some("90001"),
            "survivors renumbered densely"
        );
    }

    #[test]
    fn deleted_witness_is_replaced_in_evidence() {
        let mut engine = StreamEngine::new(schema(), vec![zip_variable_pfd()]);
        for (zip, city) in [
            ("90001", "Los Angeles"),
            ("90002", "Los Angeles"),
            ("90003", "New York"),
        ] {
            engine.push_str_row([zip, city]).unwrap();
        }
        let before = engine.ledger().snapshot();
        match &before[0].kind {
            ViolationKind::Variable { witnesses, .. } => assert_eq!(witnesses, &vec![0, 1]),
            other => panic!("unexpected {other:?}"),
        }
        // Deleting witness row 0 must rewrite the evidence, not dangle.
        let events = engine.delete_row(0).unwrap();
        assert_eq!(events.len(), 2, "retract + re-create with new witnesses");
        let after = engine.ledger().snapshot();
        assert_eq!(after.len(), 1);
        match &after[0].kind {
            ViolationKind::Variable { witnesses, .. } => assert_eq!(witnesses, &vec![1]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
