//! Cross-crate property tests on pipeline invariants.

use anmat::datagen::{names, zipcity, GenConfig};
use anmat::prelude::*;
use proptest::prelude::*;

fn config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.15,
        ..DiscoveryConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Discovery is deterministic for a fixed table.
    #[test]
    fn discovery_deterministic(seed in 0u64..1000, rows in 200usize..600) {
        let data = names::generate(&GenConfig { rows, seed, error_rate: 0.02 });
        let a = discover(&data.table, &config());
        let b = discover(&data.table, &config());
        prop_assert_eq!(a, b);
    }

    /// Blocking and brute-force variable detection flag the same rows on
    /// arbitrary generated tables.
    #[test]
    fn blocking_equals_bruteforce(seed in 0u64..1000) {
        let data = names::generate(&GenConfig { rows: 300, seed, error_rate: 0.03 });
        let pfd = Pfd::new(
            "Name",
            "full_name",
            "gender",
            vec![PatternTuple::variable(
                "\\LU\\LL+,\\ [\\LU\\LL+]\\A*".parse().unwrap(),
            )],
        );
        let blocking: Vec<usize> =
            detect_pfd(&data.table, &pfd).iter().map(|v| v.row).collect();
        let brute: Vec<usize> = Detector::new(&data.table)
            .detect_variable_bruteforce(&pfd)
            .iter()
            .map(|v| v.row)
            .collect();
        prop_assert_eq!(blocking, brute);
    }

    /// Every discovered PFD meets its own coverage threshold.
    #[test]
    fn discovered_pfds_meet_coverage(seed in 0u64..1000) {
        let data = zipcity::generate(
            &GenConfig { rows: 400, seed, error_rate: 0.02 },
            zipcity::ZipTarget::City,
        );
        let cfg = config();
        for pfd in discover(&data.table, &cfg) {
            prop_assert!(
                pfd.coverage(&data.table) + 1e-9 >= cfg.min_coverage,
                "{} has coverage {:.3} < γ {:.3}",
                pfd, pfd.coverage(&data.table), cfg.min_coverage
            );
        }
    }

    /// Raising γ never yields rules that a lower γ run lacked (the rule
    /// set shrinks or specializes as the knob tightens).
    #[test]
    fn coverage_monotonicity(seed in 0u64..500) {
        let data = zipcity::generate(
            &GenConfig { rows: 400, seed, error_rate: 0.01 },
            zipcity::ZipTarget::City,
        );
        let lo = discover(&data.table, &DiscoveryConfig { min_coverage: 0.3, ..config() });
        let hi = discover(&data.table, &DiscoveryConfig { min_coverage: 0.8, ..config() });
        // Count tableau tuples: the tighter threshold can only keep fewer
        // or equal.
        let count = |pfds: &[Pfd]| pfds.iter().map(|p| p.tableau.len()).sum::<usize>();
        prop_assert!(count(&hi) <= count(&lo), "hi {} > lo {}", count(&hi), count(&lo));
    }

    /// Repair application is idempotent: a second pass changes nothing.
    #[test]
    fn repair_idempotent(seed in 0u64..1000) {
        let mut data = zipcity::generate(
            &GenConfig { rows: 400, seed, error_rate: 0.02 },
            zipcity::ZipTarget::City,
        );
        let pfds = discover(&data.table, &config());
        let violations = detect_all(&data.table, &pfds);
        let _ = apply_repairs(&mut data.table, &violations);
        let again = detect_all(&data.table, &pfds);
        let second = apply_repairs(&mut data.table, &again);
        prop_assert_eq!(second.applied_count(), 0,
            "second repair pass must be a no-op");
    }

    /// Detection never flags a row whose LHS matches no tableau pattern.
    #[test]
    fn violations_match_some_pattern(seed in 0u64..1000) {
        let data = names::generate(&GenConfig { rows: 300, seed, error_rate: 0.05 });
        let pfds = discover(&data.table, &config());
        for v in detect_all(&data.table, &pfds) {
            // Constant and variable PFDs over the same pair share the
            // embedded-FD string; the flagged value must match a tableau
            // pattern of at least one of them.
            let admits = pfds
                .iter()
                .filter(|p| p.embedded_fd() == v.dependency)
                .any(|p| p.tableau.iter().any(|t| t.lhs.admits(&v.lhs_value)));
            prop_assert!(
                admits,
                "flagged value {:?} matches no tableau pattern of {}",
                v.lhs_value, v.dependency
            );
        }
    }
}
