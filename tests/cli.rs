//! CLI contract tests: exit codes, usage routing, and the `stream`
//! subcommand end-to-end.

use anmat::prelude::*;
use std::process::{Command, Output};

fn anmat(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_anmat"))
        .args(args)
        .output()
        .expect("anmat binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_prints_usage_to_stdout_and_succeeds() {
    for flag in ["help", "--help", "-h"] {
        let out = anmat(&[flag]);
        assert!(out.status.success(), "`anmat {flag}` must succeed");
        assert!(stdout(&out).contains("USAGE"), "usage on stdout for {flag}");
        assert!(stderr(&out).is_empty(), "no stderr noise for {flag}");
    }
}

#[test]
fn unknown_command_fails_with_usage_on_stderr() {
    let out = anmat(&["frobnicate"]);
    assert!(!out.status.success(), "unknown command must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown command `frobnicate`"));
    assert!(err.contains("USAGE"), "usage goes to stderr on error");
    assert!(stdout(&out).is_empty(), "nothing on stdout on error");
}

#[test]
fn no_command_fails_with_usage_on_stderr() {
    let out = anmat(&[]);
    assert!(!out.status.success(), "bare invocation must fail");
    assert!(stderr(&out).contains("USAGE"));
    assert!(stdout(&out).is_empty());
}

#[test]
fn stream_replays_csv_and_reports_violations() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_stream_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("zips.csv");
    std::fs::write(
        &csv,
        "zip,city\n90001,Los Angeles\n90002,Los Angeles\n90003,Los Angeles\n90004,New York\n",
    )
    .unwrap();
    let rules = dir.join("rules.json");
    let pfds = vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
        )],
    )];
    std::fs::write(&rules, serde_json::to_string(&pfds).unwrap()).unwrap();

    let out = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stream failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("+ row 3"),
        "the New York row must be flagged on arrival:\n{text}"
    );
    assert!(
        text.contains("1 live violation(s)"),
        "summary line:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_without_rules_source_fails() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_norules_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("d.csv");
    std::fs::write(&csv, "a,b\n1,2\n").unwrap();
    let out = anmat(&["stream", csv.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("need --store DIR or --rules FILE"));
    let _ = std::fs::remove_dir_all(&dir);
}
