//! CLI contract tests: exit codes, usage routing, and the `stream`
//! subcommand end-to-end.

use anmat::prelude::*;
use std::process::{Command, Output};

fn anmat(args: &[&str]) -> Output {
    // Timing lines are wall-clock (nondeterministic); every assertion in
    // this suite compares exact output, so suppress them via the env
    // hook. `stream_timing_line_is_gated` exercises the un-suppressed
    // path explicitly.
    Command::new(env!("CARGO_BIN_EXE_anmat"))
        .env("ANMAT_NO_TIMING", "1")
        .args(args)
        .output()
        .expect("anmat binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_prints_usage_to_stdout_and_succeeds() {
    for flag in ["help", "--help", "-h"] {
        let out = anmat(&[flag]);
        assert!(out.status.success(), "`anmat {flag}` must succeed");
        assert!(stdout(&out).contains("USAGE"), "usage on stdout for {flag}");
        assert!(stderr(&out).is_empty(), "no stderr noise for {flag}");
    }
}

#[test]
fn unknown_command_fails_with_usage_on_stderr() {
    let out = anmat(&["frobnicate"]);
    assert!(!out.status.success(), "unknown command must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown command `frobnicate`"));
    assert!(err.contains("USAGE"), "usage goes to stderr on error");
    assert!(stdout(&out).is_empty(), "nothing on stdout on error");
}

#[test]
fn no_command_fails_with_usage_on_stderr() {
    let out = anmat(&[]);
    assert!(!out.status.success(), "bare invocation must fail");
    assert!(stderr(&out).contains("USAGE"));
    assert!(stdout(&out).is_empty());
}

#[test]
fn stream_replays_csv_and_reports_violations() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_stream_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("zips.csv");
    std::fs::write(
        &csv,
        "zip,city\n90001,Los Angeles\n90002,Los Angeles\n90003,Los Angeles\n90004,New York\n",
    )
    .unwrap();
    let rules = dir.join("rules.json");
    let pfds = vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
        )],
    )];
    std::fs::write(&rules, serde_json::to_string(&pfds).unwrap()).unwrap();

    let out = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stream failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("+ row 3"),
        "the New York row must be flagged on arrival:\n{text}"
    );
    assert!(
        text.contains("1 live violation(s)"),
        "summary line:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_shards_flag_is_output_invariant() {
    // `--shards N` spreads rule state over N workers; the determinism
    // contract says every printed line below the header is identical.
    let dir = std::env::temp_dir().join(format!("anmat_cli_shards_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("zips.csv");
    std::fs::write(
        &csv,
        "zip,city\n90001,Los Angeles\n90002,Los Angeles\n90003,Los Angeles\n90004,New York\n",
    )
    .unwrap();
    let rules = dir.join("rules.json");
    let pfds = vec![
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::variable(
                "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
            )],
        ),
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::constant(
                ConstrainedPattern::unconstrained("900\\D{2}".parse().unwrap()),
                "Los Angeles",
            )],
        ),
    ];
    std::fs::write(&rules, serde_json::to_string(&pfds).unwrap()).unwrap();

    let strip_header =
        |text: String| -> String { text.lines().skip(1).collect::<Vec<_>>().join("\n") };
    let base = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
    ]);
    assert!(base.status.success(), "stream failed: {}", stderr(&base));
    let sharded = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--shards",
        "2",
    ]);
    assert!(
        sharded.status.success(),
        "sharded stream failed: {}",
        stderr(&sharded)
    );
    assert!(
        stdout(&sharded).contains("2 shard(s)"),
        "header advertises sharding:\n{}",
        stdout(&sharded)
    );
    assert_eq!(
        strip_header(stdout(&base)),
        strip_header(stdout(&sharded)),
        "sharded output must be bit-for-bit identical below the header"
    );

    // Bad shard counts are rejected up front.
    let bad = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--shards",
        "0",
    ]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("bad --shards"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_ops_replays_mutations_and_reports_live_rows() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_ops_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("zips.csv");
    std::fs::write(
        &csv,
        "zip,city\n90001,Los Angeles\n90002,Los Angeles\n90003,Los Angeles\n90004,New York\n",
    )
    .unwrap();
    let rules = dir.join("rules.json");
    let pfds = vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
        )],
    )];
    std::fs::write(&rules, serde_json::to_string(&pfds).unwrap()).unwrap();
    // Fix the erroneous row in place, delete a clean one, append a new
    // clean one: the violation retracts and the live count is 4.
    let ops = dir.join("fixes.ops");
    std::fs::write(&ops, "~,3,90004,Los Angeles\n-,0\n+,90005,Los Angeles\n").unwrap();

    let out = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--ops",
        ops.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stream --ops failed: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(text.contains("applying 3 op(s)"), "op-log banner:\n{text}");
    assert!(
        text.contains("- row 3"),
        "the update must retract row 3's violation:\n{text}"
    );
    assert!(
        text.contains("0 live violation(s)"),
        "violation cleared by the op-log:\n{text}"
    );
    assert!(
        text.contains("over 4 live row(s) (5 slot(s) ingested)"),
        "summary reports live rows, not raw pushes:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_compact_ratio_reclaims_slots_and_reports_epochs() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_compact_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("zips.csv");
    std::fs::write(
        &csv,
        "zip,city\n90001,Los Angeles\n90002,Los Angeles\n90003,Los Angeles\n90004,New York\n",
    )
    .unwrap();
    let rules = dir.join("rules.json");
    let pfds = vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
        )],
    )];
    std::fs::write(&rules, serde_json::to_string(&pfds).unwrap()).unwrap();
    // Delete half the table: 2 tombstones / 4 slots = 0.5 ≥ 0.3, so one
    // compaction epoch fires at the op-batch boundary.
    let ops = dir.join("churn.ops");
    std::fs::write(&ops, "-,0\n-,3\n").unwrap();

    let base_args = [
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--ops",
        ops.to_str().unwrap(),
    ];
    // Without the flag: no epochs, 4 slots kept.
    let plain = anmat(&base_args);
    assert!(plain.status.success(), "stream failed: {}", stderr(&plain));
    let text = stdout(&plain);
    assert!(
        text.contains("compaction: 0 epoch(s) run, 0 slot(s) reclaimed"),
        "compaction summary always present:\n{text}"
    );
    assert!(text.contains("over 2 live row(s) (4 slot(s) ingested)"));
    assert!(
        text.contains("4 slot(s) (2 live)"),
        "uncompacted run keeps the tombstoned slots:\n{text}"
    );

    // With --compact-ratio 0.3: one epoch, two slots reclaimed, table
    // memory reported over the compacted slot count — and the lifetime
    // "ingested" figure unchanged.
    let mut args: Vec<&str> = base_args.to_vec();
    args.extend(["--compact-ratio", "0.3"]);
    let compacted = anmat(&args);
    assert!(
        compacted.status.success(),
        "compacting stream failed: {}",
        stderr(&compacted)
    );
    let text = stdout(&compacted);
    assert!(
        text.contains("compaction: 1 epoch(s) run, 2 slot(s) reclaimed"),
        "epoch summary:\n{text}"
    );
    assert!(
        text.contains("over 2 live row(s) (4 slot(s) ingested)"),
        "lifetime slot count survives compaction:\n{text}"
    );
    assert!(
        text.contains("2 slot(s) (2 live)"),
        "table memory reported over compacted slots:\n{text}"
    );

    // Bad ratios are rejected up front.
    for bad in ["0", "1.5", "nope"] {
        let mut args: Vec<&str> = base_args.to_vec();
        args.extend(["--compact-ratio", bad]);
        let out = anmat(&args);
        assert!(!out.status.success(), "`--compact-ratio {bad}` must fail");
        assert!(stderr(&out).contains("bad --compact-ratio"));
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_ops_rejects_malformed_logs() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_badops_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("d.csv");
    std::fs::write(&csv, "zip,city\n90001,Los Angeles\n90002,Los Angeles\n").unwrap();
    let rules = dir.join("rules.json");
    let pfds = vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
        )],
    )];
    std::fs::write(&rules, serde_json::to_string(&pfds).unwrap()).unwrap();

    for (ops_text, want) in [
        ("?,1\n", "unknown op"),
        ("-,notanumber\n", "bad row id"),
        ("-,7\n", "out of range or already deleted"),
        ("-,0\n-,0\n", "out of range or already deleted"),
    ] {
        let ops = dir.join("bad.ops");
        std::fs::write(&ops, ops_text).unwrap();
        let out = anmat(&[
            "stream",
            csv.to_str().unwrap(),
            "--rules",
            rules.to_str().unwrap(),
            "--ops",
            ops.to_str().unwrap(),
        ]);
        assert!(!out.status.success(), "`{ops_text}` must fail");
        assert!(
            stderr(&out).contains(want),
            "`{ops_text}` should report `{want}`, got: {}",
            stderr(&out)
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Write the standard 4-row zips fixture + one variable rule; returns
/// (csv, rules) paths inside `dir`.
fn zips_fixture(dir: &std::path::Path) -> (std::path::PathBuf, std::path::PathBuf) {
    let csv = dir.join("zips.csv");
    std::fs::write(
        &csv,
        "zip,city\n90001,Los Angeles\n90002,Los Angeles\n90003,Los Angeles\n90004,New York\n",
    )
    .unwrap();
    let rules = dir.join("rules.json");
    let pfds = vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
        )],
    )];
    std::fs::write(&rules, serde_json::to_string(&pfds).unwrap()).unwrap();
    (csv, rules)
}

#[test]
fn stream_metrics_out_writes_parseable_registry_snapshot() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_metrics_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (csv, rules) = zips_fixture(&dir);
    // Mutations so the ledger sees churn, sharded so per-shard metrics
    // register. One rule clamps --shards 2 down to 1 shard — still the
    // sharded engine, so `shard.0.*` families appear.
    let ops = dir.join("fixes.ops");
    std::fs::write(&ops, "~,3,90004,Los Angeles\n-,0\n+,90005,Los Angeles\n").unwrap();
    let metrics = dir.join("metrics.json");

    let out = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--ops",
        ops.to_str().unwrap(),
        "--shards",
        "2",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stream --metrics-out failed: {}",
        stderr(&out)
    );
    assert!(
        stdout(&out).contains("metrics: full registry snapshot written to"),
        "snapshot banner:\n{}",
        stdout(&out)
    );

    let text = std::fs::read_to_string(&metrics).expect("snapshot file written");
    let json: serde::Value = serde_json::from_str(&text).expect("snapshot is valid JSON");
    let serde::Value::Object(top) = &json else {
        panic!("snapshot root must be an object");
    };
    let section = |name: &str| -> &serde::Value {
        &top.iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("snapshot has a `{name}` section"))
            .1
    };
    let keys = |v: &serde::Value| -> Vec<String> {
        let serde::Value::Object(entries) = v else {
            panic!("section must be an object");
        };
        entries.iter().map(|(k, _)| k.clone()).collect()
    };
    let counters = keys(section("counters"));
    let gauges = keys(section("gauges"));
    let histograms = keys(section("histograms"));
    // One representative per instrumented family: pool, table,
    // engine-phase, per-shard, ledger.
    for want in [
        "pool.intern.misses",
        "table.push",
        "table.delete",
        "engine.ops",
        "shard.batches",
        "shard.0.batches",
        "ledger.created",
        "ledger.retracted",
    ] {
        assert!(
            counters.iter().any(|k| k == want),
            "counter `{want}` in {counters:?}"
        );
    }
    for want in [
        "pool.bytes",
        "table.slots",
        "table.live",
        "memo.evals",
        "ledger.live",
        "shard.0.queue_depth",
    ] {
        assert!(
            gauges.iter().any(|k| k == want),
            "gauge `{want}` in {gauges:?}"
        );
    }
    for want in [
        "cli.replay_ns",
        "cli.apply_ns",
        "shard.merge_ns",
        "shard.0.busy_ns",
    ] {
        assert!(
            histograms.iter().any(|k| k == want),
            "histogram `{want}` in {histograms:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_stats_every_prints_periodic_deterministic_lines() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_stats_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (csv, rules) = zips_fixture(&dir);

    // 4 rows, batch 1, a stats line every 2 batches → exactly 2 lines.
    // Under ANMAT_NO_TIMING (the helper sets it) the line carries only
    // the deterministic figures — no rows/s.
    let out = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--stats-every",
        "2",
    ]);
    assert!(out.status.success(), "stream failed: {}", stderr(&out));
    let text = stdout(&out);
    let stats: Vec<&str> = text.lines().filter(|l| l.starts_with("stats: ")).collect();
    assert_eq!(stats.len(), 2, "one stats line per 2 batches:\n{text}");
    assert!(
        stats[0].starts_with("stats: 2 slot(s) (2 live), 0 live violation(s), pool "),
        "first tick sees two rows, no violation yet:\n{text}"
    );
    assert!(
        stats[1].starts_with("stats: 4 slot(s) (4 live), 1 live violation(s), pool "),
        "second tick sees all four rows and the violation:\n{text}"
    );
    assert!(
        !stats.iter().any(|l| l.contains("rows/s")),
        "no wall-clock rate under ANMAT_NO_TIMING:\n{text}"
    );

    // Bad values are rejected up front.
    let bad = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--stats-every",
        "0",
    ]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("bad --stats-every"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_timing_line_is_gated() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_timing_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (csv, rules) = zips_fixture(&dir);
    let run = |extra: &[&str]| -> Output {
        // Bypass the suite helper: this test exercises the un-suppressed
        // timing path, so make sure the env hook is NOT set.
        Command::new(env!("CARGO_BIN_EXE_anmat"))
            .env_remove("ANMAT_NO_TIMING")
            .args([
                "stream",
                csv.to_str().unwrap(),
                "--rules",
                rules.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .expect("anmat binary runs")
    };

    let timed = run(&[]);
    assert!(timed.status.success(), "stream failed: {}", stderr(&timed));
    let text = stdout(&timed);
    assert!(
        text.contains("timing: streamed 4 row(s) in") && text.contains("rows/s"),
        "timing line present by default:\n{text}"
    );

    let quieted = run(&["--quiet"]);
    assert!(quieted.status.success());
    assert!(
        !stdout(&quieted).contains("timing:"),
        "--quiet suppresses the timing line:\n{}",
        stdout(&quieted)
    );

    let suppressed = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
    ]);
    assert!(suppressed.status.success());
    assert!(
        !stdout(&suppressed).contains("timing:"),
        "ANMAT_NO_TIMING suppresses the timing line:\n{}",
        stdout(&suppressed)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_without_rules_source_fails() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_norules_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("d.csv");
    std::fs::write(&csv, "a,b\n1,2\n").unwrap();
    let out = anmat(&["stream", csv.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("need --store DIR or --rules FILE"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--reclaim` sweeps stranded strings at the compaction barrier and is
/// output-invariant below the header; `--checkpoint` writes a
/// snapshot-backed JSON checkpoint into the store.
#[test]
fn stream_reclaim_is_output_invariant_and_checkpoint_writes_json() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_reclaim_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("zips.csv");
    // Unique cities are stranded once their rows die; shared ones stay.
    let mut data = String::from("zip,city\n");
    for i in 0..40 {
        let prefix = ["900", "104"][i % 2];
        let city = if i % 4 == 0 {
            format!("uniq-{i}")
        } else {
            format!("city-{prefix}")
        };
        data.push_str(&format!("{prefix}{i:02},{city}\n"));
    }
    std::fs::write(&csv, data).unwrap();
    let pfds = vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
        )],
    )];
    let store_dir = dir.join("store");
    let store = RuleStore::open(&store_dir).unwrap();
    store
        .save(&DatasetRecord {
            name: "zips".into(),
            profile: None,
            rules: pfds
                .into_iter()
                .map(|pfd| StoredRule {
                    pfd,
                    status: RuleStatus::Confirmed,
                })
                .collect(),
        })
        .unwrap();
    // Delete the first 30 rows: tombstones cross --compact-ratio, one
    // epoch fires, and the dead rows' unique cities lose their last
    // reference right at the barrier.
    let ops = dir.join("churn.ops");
    std::fs::write(
        &ops,
        (0..30).map(|r| format!("-,{r}\n")).collect::<String>(),
    )
    .unwrap();

    let base = [
        "stream",
        csv.to_str().unwrap(),
        "--store",
        store_dir.to_str().unwrap(),
        "--ops",
        ops.to_str().unwrap(),
        "--compact-ratio",
        "0.3",
    ];
    let plain = anmat(&base);
    assert!(plain.status.success(), "stream failed: {}", stderr(&plain));

    let mut reclaim_args = base.to_vec();
    reclaim_args.extend(["--reclaim", "--checkpoint"]);
    let swept = anmat(&reclaim_args);
    assert!(
        swept.status.success(),
        "stream --reclaim failed: {}",
        stderr(&swept)
    );
    let text = stdout(&swept);
    assert!(
        text.contains("reclaim: ") && !text.contains("reclaim: 0 string(s)"),
        "the sweep must free the stranded unique cities:\n{text}"
    );
    assert!(
        text.contains("checkpoint: epoch 1, 10 live row(s)"),
        "snapshot-backed checkpoint banner:\n{text}"
    );
    let checkpoint_path = store_dir.join("zips.checkpoint.json");
    let checkpoint = std::fs::read_to_string(&checkpoint_path).unwrap();
    assert!(
        checkpoint.starts_with("{\"epoch\":1,\"table\":"),
        "checkpoint JSON shape:\n{checkpoint}"
    );
    assert!(checkpoint.contains("\"violations\":"));

    // Everything is identical modulo the reclaim / checkpoint lines and
    // the pool footprint itself (which is the point: the sweep shrinks
    // it) — reclamation never changes observable violation output.
    let filter = |s: &str| {
        s.lines()
            .filter(|l| {
                !l.starts_with("reclaim: ")
                    && !l.starts_with("checkpoint: ")
                    && !l.starts_with("pool: ")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        filter(&stdout(&plain)),
        filter(&text),
        "--reclaim must be output-invariant"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_checkpoint_without_store_fails() {
    let dir = std::env::temp_dir().join(format!("anmat_cli_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("d.csv");
    std::fs::write(&csv, "a,b\n1,2\n").unwrap();
    let rules = dir.join("rules.json");
    let pfds = vec![Pfd::new(
        "R",
        "a",
        "b",
        vec![PatternTuple::variable(
            "[\\D{1}]".parse::<ConstrainedPattern>().unwrap(),
        )],
    )];
    std::fs::write(&rules, serde_json::to_string(&pfds).unwrap()).unwrap();
    let out = anmat(&[
        "stream",
        csv.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--checkpoint",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--checkpoint needs --store DIR"));
    let _ = std::fs::remove_dir_all(&dir);
}
