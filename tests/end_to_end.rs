//! Cross-crate integration tests: the full discover → detect pipeline on
//! the synthetic paper datasets, scored against ground truth.

use anmat::datagen::{names, phone, zipcity, GenConfig};
use anmat::prelude::*;

fn config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.15,
        ..DiscoveryConfig::default()
    }
}

#[test]
fn phone_state_pipeline_catches_injected_errors() {
    let data = phone::generate(&GenConfig {
        rows: 2000,
        seed: 42,
        error_rate: 0.01,
    });
    let pfds = discover(&data.table, &config());
    assert!(
        !pfds.is_empty(),
        "area-code rules must be discovered from dirty data"
    );
    let violations = detect_all(&data.table, &pfds);
    let flagged: Vec<usize> = violations.iter().map(|v| v.row).collect();
    let score = data.score(&flagged);
    assert!(
        score.recall() >= 0.9,
        "recall {:.2} too low ({} tp, {} fn)",
        score.recall(),
        score.true_positives,
        score.false_negatives
    );
    assert!(
        score.precision() >= 0.9,
        "precision {:.2} too low ({} tp, {} fp)",
        score.precision(),
        score.true_positives,
        score.false_positives
    );
}

#[test]
fn name_gender_pipeline_catches_flips() {
    let data = names::generate(&GenConfig {
        rows: 2000,
        seed: 7,
        error_rate: 0.01,
    });
    let pfds = discover(&data.table, &config());
    assert!(!pfds.is_empty());
    let violations = detect_all(&data.table, &pfds);
    let flagged: Vec<usize> = violations.iter().map(|v| v.row).collect();
    let score = data.score(&flagged);
    assert!(score.recall() >= 0.9, "recall {:.2}", score.recall());
    assert!(
        score.precision() >= 0.9,
        "precision {:.2}",
        score.precision()
    );
}

#[test]
fn zip_city_pipeline_catches_typos() {
    let data = zipcity::generate(
        &GenConfig {
            rows: 2000,
            seed: 3,
            error_rate: 0.01,
        },
        zipcity::ZipTarget::City,
    );
    let pfds = discover(&data.table, &config());
    let zip_city: Vec<&Pfd> = pfds
        .iter()
        .filter(|p| p.lhs_attr == "zip" && p.rhs_attr == "city")
        .collect();
    assert!(!zip_city.is_empty(), "zip → city must be discovered");
    let violations = detect_all(&data.table, &pfds);
    let flagged: Vec<usize> = violations
        .iter()
        .filter(|v| v.rhs_attr == "city")
        .map(|v| v.row)
        .collect();
    let score = data.score(&flagged);
    assert!(score.recall() >= 0.9, "recall {:.2}", score.recall());
}

#[test]
fn zip_state_pipeline_catches_case_errors() {
    let data = zipcity::generate(
        &GenConfig {
            rows: 2000,
            seed: 5,
            error_rate: 0.01,
        },
        zipcity::ZipTarget::State,
    );
    let pfds = discover(&data.table, &config());
    let violations = detect_all(&data.table, &pfds);
    let flagged: Vec<usize> = violations
        .iter()
        .filter(|v| v.rhs_attr == "state")
        .map(|v| v.row)
        .collect();
    let score = data.score(&flagged);
    assert!(
        score.recall() >= 0.9,
        "case-flipped states must be caught: recall {:.2}",
        score.recall()
    );
}

#[test]
fn pfd_catches_what_fd_cannot() {
    // The paper's core positioning claim (E15), on D2-style data: full
    // names are (nearly) all distinct, so FDs see nothing; PFDs key on the
    // first name.
    let data = names::generate(&GenConfig {
        rows: 1500,
        seed: 11,
        error_rate: 0.01,
    });
    let fd_miner = FdMiner::new(FdConfig::default());
    let fds = fd_miner.discover(&data.table);
    let name_col = data.table.schema().index_of("full_name").unwrap();
    let gender_col = data.table.schema().index_of("gender").unwrap();
    let fd_flagged: Vec<usize> = fds
        .iter()
        .filter(|f| f.lhs == vec![name_col] && f.rhs == gender_col)
        .flat_map(|f| fd_miner.detect(&data.table, f))
        .map(|v| v.row)
        .collect();
    let fd_score = data.score(&fd_flagged);

    let pfds = discover(&data.table, &config());
    let violations = detect_all(&data.table, &pfds);
    let pfd_flagged: Vec<usize> = violations.iter().map(|v| v.row).collect();
    let pfd_score = data.score(&pfd_flagged);

    assert!(
        pfd_score.recall() > fd_score.recall(),
        "PFD recall {:.2} must beat FD recall {:.2}",
        pfd_score.recall(),
        fd_score.recall()
    );
}

#[test]
fn csv_roundtrip_preserves_detection() {
    // Serialize the dirty table to CSV, re-read it, and confirm the same
    // rows are flagged — the demo's upload path.
    let data = phone::generate(&GenConfig {
        rows: 500,
        seed: 19,
        error_rate: 0.02,
    });
    let pfds = discover(&data.table, &config());
    let direct: Vec<usize> = detect_all(&data.table, &pfds)
        .iter()
        .map(|v| v.row)
        .collect();
    let text = csv::write_str(&data.table);
    let reread = csv::read_str(&text).unwrap();
    let roundtrip: Vec<usize> = detect_all(&reread, &pfds).iter().map(|v| v.row).collect();
    assert_eq!(direct, roundtrip);
}

#[test]
fn pfd_serde_roundtrip_preserves_detection() {
    let data = names::generate(&GenConfig {
        rows: 500,
        seed: 23,
        error_rate: 0.02,
    });
    let pfds = discover(&data.table, &config());
    let json = serde_json::to_string(&pfds).unwrap();
    let back: Vec<Pfd> = serde_json::from_str(&json).unwrap();
    assert_eq!(pfds, back);
    assert_eq!(
        detect_all(&data.table, &pfds),
        detect_all(&data.table, &back)
    );
}

#[test]
fn parallel_discovery_matches_sequential() {
    let data = zipcity::generate(
        &GenConfig {
            rows: 800,
            seed: 29,
            error_rate: 0.01,
        },
        zipcity::ZipTarget::City,
    );
    let sequential = discover(&data.table, &config());
    let parallel = discover(
        &data.table,
        &DiscoveryConfig {
            parallel: true,
            ..config()
        },
    );
    assert_eq!(sequential, parallel);
}

#[test]
fn reports_render_on_real_pipeline() {
    let data = names::generate(&GenConfig {
        rows: 300,
        seed: 31,
        error_rate: 0.02,
    });
    let profile = TableProfile::profile(&data.table);
    let prof_view = report::profiling_view(&data.table, &profile);
    assert!(prof_view.contains("Column `full_name`"));
    let pfds = discover(&data.table, &config());
    assert!(!pfds.is_empty());
    let tab_view = report::tableau_view(&data.table, &pfds[0]);
    assert!(tab_view.contains("full_name → gender"));
    let violations = detect_all(&data.table, &pfds);
    let viol_view = report::violations_view(&data.table, &violations);
    assert!(viol_view.contains("violation(s)"));
}
