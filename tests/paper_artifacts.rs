//! Regression pins for the paper's concrete artifacts: the λ rules of
//! §1–§2 and the Table 3 tableau shapes must keep being discovered.

use anmat::datagen::{employee, names, phone, zipcity, GenConfig};
use anmat::pattern::{contains, ConstrainedPattern, Pattern};
use anmat::prelude::*;
use anmat::table::{Schema, Table};

fn gen(rows: usize, seed: u64) -> GenConfig {
    GenConfig {
        rows,
        seed,
        error_rate: 0.01,
    }
}

fn config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.1,
        ..DiscoveryConfig::default()
    }
}

/// Every constant-tuple LHS pattern of the discovered PFDs, as strings.
fn constant_patterns(pfds: &[Pfd]) -> Vec<String> {
    pfds.iter()
        .flat_map(|p| p.constant_tuples())
        .filter_map(|t| match &t.lhs {
            LhsCell::Pattern(q) => Some(q.to_string()),
            LhsCell::Wildcard => None,
        })
        .collect()
}

#[test]
fn table3_d1_phone_patterns_verbatim() {
    let data = phone::generate(&gen(8000, 0xA1));
    let pfds = discover(&data.table, &config());
    let patterns = constant_patterns(&pfds);
    // The paper's five tableau rows, string-identical.
    for expected in [
        "850\\D{7}",
        "607\\D{7}",
        "404\\D{7}",
        "217\\D{7}",
        "860\\D{7}",
    ] {
        assert!(
            patterns.iter().any(|p| p == expected),
            "missing {expected} in {patterns:?}"
        );
    }
}

#[test]
fn table3_d2_name_patterns_verbatim() {
    let data = names::generate(&gen(8000, 0xA2));
    let mut cfg = config();
    cfg.context_style = ContextStyle::AnyString;
    let pfds = discover(&data.table, &cfg);
    let patterns = constant_patterns(&pfds);
    for expected in [
        "\\A*,\\ Donald\\A*",
        "\\A*,\\ Stacey\\A*",
        "\\A*,\\ David\\A*",
        "\\A*,\\ Jerry\\A*",
        "\\A*,\\ Alan\\A*",
    ] {
        assert!(
            patterns.iter().any(|p| p == expected),
            "missing {expected} in {patterns:?}"
        );
    }
}

#[test]
fn table3_d5_zip_city_pattern_verbatim() {
    let data = zipcity::generate(&gen(8000, 0xA5), zipcity::ZipTarget::City);
    let pfds = discover(&data.table, &config());
    let patterns = constant_patterns(&pfds);
    assert!(
        patterns.iter().any(|p| p == "6060\\D"),
        "missing the paper's 6060\\D in {patterns:?}"
    );
}

#[test]
fn section1_employee_rules_verbatim() {
    let data = employee::generate(&gen(5000, 0xA7));
    let pfds = discover(&data.table, &config());
    let patterns = constant_patterns(&pfds);
    assert!(
        patterns.iter().any(|p| p == "F-\\D-\\D{3}"),
        "missing F-\\D-\\D{{3}} in {patterns:?}"
    );
    // And the variable form constraining the department letter.
    let has_variable = pfds
        .iter()
        .flat_map(Pfd::variable_tuples)
        .any(|t| matches!(&t.lhs, LhsCell::Pattern(q) if q.to_string() == "[\\LU]-\\D-\\D{3}"));
    assert!(has_variable, "missing [\\LU]-\\D-\\D{{3}} variable rule");
}

#[test]
fn lambda_rules_hold_by_containment() {
    // Discovered patterns must be contained in (at most as general as)
    // the idealized paper λ patterns, so they inherit their semantics.
    let data = phone::generate(&gen(8000, 0xA9));
    let pfds = discover(&data.table, &config());
    let ideal: Pattern = "\\D{10}".parse().unwrap();
    for p in constant_patterns(&pfds) {
        let p: Pattern = p.parse().unwrap();
        assert!(
            contains(&ideal, &p),
            "{p} must stay within the 10-digit phone space"
        );
    }
}

#[test]
fn example2_q1_q2_relations() {
    // The paper's Example 2, end to end through the public API.
    let q1: ConstrainedPattern = "[\\LU\\LL*\\ ]\\A*".parse().unwrap();
    let q2: ConstrainedPattern = "[\\LU\\LL*\\ ]\\A*\\ [\\LU\\LL*]".parse().unwrap();
    assert!(q2.is_restriction_of(&q1));
    assert!(!q1.is_restriction_of(&q2));
    assert!(q1.equivalent("John Charles", "John Bosco"));
    assert_eq!(
        q1.captures("John Charles").unwrap(),
        vec!["John ".to_string()]
    );
}

#[test]
fn four_cell_violation_of_lambda4() {
    // §1: "a violation consisting of four cells (r3[name], r3[gender],
    // r4[name], r4[gender])".
    let t = Table::from_str_rows(
        Schema::new(["name", "gender"]).unwrap(),
        [
            ["John Charles", "M"],
            ["John Bosco", "M"],
            ["Susan Orlean", "F"],
            ["Susan Boyle", "M"],
        ],
    )
    .unwrap();
    let lambda4 = Pfd::new(
        "Name",
        "name",
        "gender",
        vec![PatternTuple::variable(
            "[\\LU\\LL*\\ ]\\A*".parse::<ConstrainedPattern>().unwrap(),
        )],
    );
    let violations = detect_pfd(&t, &lambda4);
    assert_eq!(violations.len(), 1);
    let cells = violations[0].cells();
    assert_eq!(cells.len(), 4);
    let rows: std::collections::HashSet<usize> = cells.iter().map(|(r, _)| *r).collect();
    assert_eq!(rows, [2usize, 3].into_iter().collect());
}

#[test]
fn lambda5_detects_s4_by_comparison() {
    // §1: "λ5 can detect the error s4[city] by comparing s4 with either
    // s1, s2, or s3."
    let t = Table::from_str_rows(
        Schema::new(["zip", "city"]).unwrap(),
        [
            ["90001", "Los Angeles"],
            ["90002", "Los Angeles"],
            ["90003", "Los Angeles"],
            ["90004", "New York"],
        ],
    )
    .unwrap();
    let lambda5 = Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
        )],
    );
    let violations = detect_pfd(&t, &lambda5);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].row, 3);
    match &violations[0].kind {
        ViolationKind::Variable { witnesses, .. } => {
            assert!(!witnesses.is_empty());
            assert!(witnesses.iter().all(|w| [0, 1, 2].contains(w)));
        }
        other => panic!("unexpected {other:?}"),
    }
}
