//! Failure-injection and edge-case robustness for the full pipeline.

use anmat::datagen::{names, phone, GenConfig};
use anmat::prelude::*;
use anmat::table::{Schema, Table, Value};

fn config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.15,
        ..DiscoveryConfig::default()
    }
}

#[test]
fn empty_table_yields_nothing() {
    let t = Table::empty(Schema::new(["a", "b"]).unwrap());
    assert!(discover(&t, &config()).is_empty());
}

#[test]
fn single_row_yields_nothing() {
    let t =
        Table::from_str_rows(Schema::new(["a", "b"]).unwrap(), [["90001", "Los Angeles"]]).unwrap();
    assert!(discover(&t, &config()).is_empty());
}

#[test]
fn all_null_columns_are_skipped() {
    let t = Table::from_str_rows(
        Schema::new(["a", "b"]).unwrap(),
        [["", "x"], ["", "y"], ["", "z"]],
    )
    .unwrap();
    assert!(discover(&t, &config()).is_empty());
}

#[test]
fn heavy_null_rate_still_discovers() {
    // Half the RHS cells nulled out: rules should still form from the
    // non-null half (nulls neither support nor violate).
    let mut data = phone::generate(&GenConfig {
        rows: 2000,
        seed: 77,
        error_rate: 0.0,
    });
    for row in (0..data.table.row_count()).step_by(2) {
        data.table.set_cell(row, 1, Value::Null);
    }
    let pfds = discover(&data.table, &config());
    assert!(!pfds.is_empty(), "nulls must not block discovery");
    // Constant rules treat a null RHS on a matching LHS as a violation —
    // every nulled row is flagged.
    let violations = detect_all(&data.table, &pfds);
    assert!(violations.iter().any(|v| matches!(
        &v.kind,
        ViolationKind::Constant { found: None, .. } | ViolationKind::Variable { found: None, .. }
    )));
}

#[test]
fn error_rate_sweep_degrades_gracefully() {
    // As injected error rates rise past the allowed-violation ratio, rules
    // stop being discovered rather than producing garbage detections.
    let mut recalls = Vec::new();
    for &rate in &[0.01, 0.05, 0.30] {
        let data = names::generate(&GenConfig {
            rows: 1500,
            seed: 101,
            error_rate: rate,
        });
        let pfds = discover(&data.table, &config());
        let flagged: Vec<usize> = detect_all(&data.table, &pfds)
            .iter()
            .map(|v| v.row)
            .collect();
        let score = data.score(&flagged);
        // Precision stays high whenever anything is flagged at all.
        assert!(
            score.precision() >= 0.8,
            "precision {:.2} at error rate {rate}",
            score.precision()
        );
        recalls.push(score.recall());
    }
    assert!(recalls[0] >= 0.9, "low-noise recall {:.2}", recalls[0]);
    // At 30% corruption the 15% violation budget is exceeded: rules are
    // (correctly) rejected and recall collapses instead of precision.
    assert!(
        recalls[2] < recalls[0],
        "recall must degrade with noise: {recalls:?}"
    );
}

#[test]
fn mixed_shape_column_does_not_panic() {
    let t = Table::from_str_rows(
        Schema::new(["messy", "tag"]).unwrap(),
        [
            ["90001", "a"],
            ["John Charles", "b"],
            ["F-9-107", "c"],
            ["", "d"],
            ["  spaces  everywhere ", "e"],
            ["ünïcödé Überall", "f"],
            ["\"quoted, csv\"", "g"],
            ["90002", "a"],
        ],
    )
    .unwrap();
    // Nothing to find, but every stage must survive the mess.
    let pfds = discover(&t, &config());
    let _ = detect_all(&t, &pfds);
    let profile = TableProfile::profile(&t);
    let _ = report::profiling_view(&t, &profile);
}

#[test]
fn repair_fixpoint_on_generated_data() {
    let mut data = phone::generate(&GenConfig {
        rows: 2000,
        seed: 55,
        error_rate: 0.01,
    });
    let pfds = discover(&data.table, &config());
    let reports = repair_to_fixpoint(&mut data.table, &pfds, 5);
    let applied: usize = reports.iter().map(RepairReport::applied_count).sum();
    assert!(applied >= data.errors.len() * 9 / 10, "repaired {applied}");
    // After repair, detection is (near-)clean.
    let residual = detect_all(&data.table, &pfds);
    assert!(
        residual.len() <= data.errors.len() / 10,
        "residual violations: {}",
        residual.len()
    );
    // And the repairs actually restored ground truth.
    for e in &data.errors {
        assert_eq!(
            data.table.cell_str(e.row, e.col),
            Some(e.original.as_str()),
            "row {} not restored",
            e.row
        );
    }
}

#[test]
fn rule_store_roundtrip_through_detection() {
    let data = phone::generate(&GenConfig {
        rows: 1000,
        seed: 91,
        error_rate: 0.02,
    });
    let pfds = discover(&data.table, &config());
    let dir = std::env::temp_dir().join(format!("anmat_rs_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = RuleStore::open(&dir).unwrap();
    store
        .save(&DatasetRecord {
            name: "phones".into(),
            profile: Some(TableProfile::profile(&data.table)),
            rules: pfds
                .iter()
                .cloned()
                .map(|pfd| StoredRule {
                    pfd,
                    status: RuleStatus::Confirmed,
                })
                .collect(),
        })
        .unwrap();
    let loaded = store.active_rules("phones", false).unwrap();
    assert_eq!(loaded, pfds);
    assert_eq!(
        detect_all(&data.table, &loaded),
        detect_all(&data.table, &pfds)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_rows_are_harmless() {
    let mut rows: Vec<[&str; 2]> = Vec::new();
    for _ in 0..50 {
        rows.push(["90001", "Los Angeles"]);
    }
    rows.push(["90001", "San Diego"]); // 1 error among 50 duplicates
    let t = Table::from_str_rows(Schema::new(["zip", "city"]).unwrap(), rows).unwrap();
    let pfds = discover(&t, &config());
    assert!(!pfds.is_empty());
    let violations = detect_all(&t, &pfds);
    assert!(violations.iter().any(|v| v.row == 50));
    assert!(violations.iter().all(|v| v.row == 50));
}

#[test]
fn detection_on_foreign_schema_is_empty_not_panicking() {
    // Rules discovered on one schema run harmlessly against another.
    let data = phone::generate(&GenConfig {
        rows: 500,
        seed: 13,
        error_rate: 0.02,
    });
    let pfds = discover(&data.table, &config());
    let other =
        Table::from_str_rows(Schema::new(["x", "y"]).unwrap(), [["1", "2"], ["3", "4"]]).unwrap();
    assert!(detect_all(&other, &pfds).is_empty());
}
