//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace uses — structs with named fields, and enums with
//! unit / tuple / struct variants — plus the container attribute
//! `#[serde(try_from = "...", into = "...")]`. Written directly against
//! `proc_macro` token trees because `syn`/`quote` are unavailable offline.
//!
//! Generated impls target the value-model traits of the sibling `serde`
//! vendor crate and reproduce real serde's externally-tagged JSON layout.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input declared.
struct Item {
    name: String,
    shape: Shape,
    /// `#[serde(try_from = "...")]` type, if present.
    try_from: Option<String>,
    /// `#[serde(into = "...")]` type, if present.
    into: Option<String>,
}

enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: `(variant name, payload)` in declaration order.
    Enum(Vec<(String, Payload)>),
}

enum Payload {
    Unit,
    /// Tuple variant with the given arity.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut try_from = None;
    let mut into = None;
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: `# [ ... ]`. Record serde container attrs.
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    parse_serde_attr(g.stream(), &mut try_from, &mut into);
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Possible restriction: `pub (crate)`.
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    tokens.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut tokens);
                let body = expect_brace(&mut tokens, &name);
                let fields = parse_named_fields(body);
                return Item {
                    name,
                    shape: Shape::Struct(fields),
                    try_from,
                    into,
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut tokens);
                let body = expect_brace(&mut tokens, &name);
                let variants = parse_variants(body);
                return Item {
                    name,
                    shape: Shape::Enum(variants),
                    try_from,
                    into,
                };
            }
            Some(_) => {}
            None => panic!("serde derive: expected a struct or enum"),
        }
    }
}

/// If the attribute group is `serde(...)`, pull out `try_from`/`into`.
fn parse_serde_attr(stream: TokenStream, try_from: &mut Option<String>, into: &mut Option<String>) {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return;
    };
    let mut args = args.stream().into_iter().peekable();
    while let Some(tt) = args.next() {
        let TokenTree::Ident(key) = tt else { continue };
        let key = key.to_string();
        // Expect `= "literal"`.
        match (args.next(), args.next()) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                let text = lit.to_string();
                let inner = text.trim_matches('"').to_string();
                match key.as_str() {
                    "try_from" => *try_from = Some(inner),
                    "into" => *into = Some(inner),
                    other => panic!("serde derive: unsupported serde attribute `{other}`"),
                }
            }
            _ => panic!("serde derive: malformed serde attribute `{key}`"),
        }
    }
}

fn expect_ident(tokens: &mut impl Iterator<Item = TokenTree>) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected identifier, found {other:?}"),
    }
}

fn expect_brace(tokens: &mut impl Iterator<Item = TokenTree>, name: &str) -> TokenStream {
    for tt in tokens {
        match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => return g.stream(),
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde derive: generic type `{name}` is not supported by the offline shim")
            }
            _ => {}
        }
    }
    panic!("serde derive: `{name}` has no braced body (unit/tuple structs unsupported)")
}

/// Field names of a `{ name: Type, ... }` body. Types are skipped
/// angle-bracket-aware, so `HashMap<String, usize>` does not split a field.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    tokens.next();
                }
                continue;
            }
            _ => {}
        }
        let name = expect_ident(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Payload)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            _ => {}
        }
        let name = expect_ident(&mut tokens);
        let payload = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_types(g.stream());
                tokens.next();
                Payload::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Payload::Struct(fields)
            }
            _ => Payload::Unit,
        };
        variants.push((name, payload));
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
    }
    variants
}

/// Number of comma-separated types at the top level of a tuple payload.
fn count_top_level_types(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut last_was_comma = false;
    for tt in stream {
        any = true;
        last_was_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        return 0;
    }
    // A trailing comma does not introduce another type.
    commas + usize::from(!last_was_comma)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.into {
        format!(
            "let __converted: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_json_value(&__converted)"
        )
    } else {
        match &item.shape {
            Shape::Struct(fields) => {
                let mut pairs = String::new();
                for f in fields {
                    pairs.push_str(&format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value(&self.{f})),"
                    ));
                }
                format!("::serde::Value::Object(::std::vec![{pairs}])")
            }
            Shape::Enum(variants) => {
                let mut arms = String::new();
                for (v, payload) in variants {
                    match payload {
                        Payload::Unit => arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{v}\")),"
                        )),
                        Payload::Tuple(1) => arms.push_str(&format!(
                            "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_json_value(__f0))]),"
                        )),
                        Payload::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            ));
                        }
                        Payload::Struct(fields) => {
                            let binders = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_json_value({f}))"
                                    )
                                })
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{v} {{ {binders} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                pairs.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{ {arms} }}")
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(try_ty) = &item.try_from {
        format!(
            "let __converted: {try_ty} = ::serde::Deserialize::from_json_value(__v)?;\n\
             <{name} as ::std::convert::TryFrom<{try_ty}>>::try_from(__converted)\
                 .map_err(|e| ::serde::Error::custom(::std::format!(\"{{e}}\")))"
        )
    } else {
        match &item.shape {
            Shape::Struct(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!("{f}: ::serde::__private::field(__v, \"{f}\")?,"));
                }
                format!(
                    "if __v.as_object().is_none() {{\n\
                         return ::std::result::Result::Err(\
                             ::serde::Error::expected(\"object\", __v));\n\
                     }}\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})"
                )
            }
            Shape::Enum(variants) => {
                let mut arms = String::new();
                for (v, payload) in variants {
                    match payload {
                        Payload::Unit => arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                        )),
                        Payload::Tuple(1) => arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let __p = __payload.ok_or_else(|| ::serde::Error::custom(\
                                     \"missing payload for variant `{v}`\"))?;\n\
                                 ::std::result::Result::Ok({name}::{v}(\
                                     ::serde::Deserialize::from_json_value(__p)?))\n\
                             }}"
                        )),
                        Payload::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_json_value(&__items[{i}])?")
                                })
                                .collect();
                            arms.push_str(&format!(
                                "\"{v}\" => {{\n\
                                     let __p = __payload.ok_or_else(|| ::serde::Error::custom(\
                                         \"missing payload for variant `{v}`\"))?;\n\
                                     let __items = ::serde::__private::tuple_payload(__p, {n})?;\n\
                                     ::std::result::Result::Ok({name}::{v}({}))\n\
                                 }}",
                                items.join(", ")
                            ));
                        }
                        Payload::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__private::field(__p, \"{f}\")?"))
                                .collect();
                            arms.push_str(&format!(
                                "\"{v}\" => {{\n\
                                     let __p = __payload.ok_or_else(|| ::serde::Error::custom(\
                                         \"missing payload for variant `{v}`\"))?;\n\
                                     ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ));
                        }
                    }
                }
                format!(
                    "let (__variant, __payload) = ::serde::__private::variant(__v)?;\n\
                     match __variant {{\n\
                         {arms}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
