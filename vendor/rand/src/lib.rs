//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! Provides the subset the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`Rng::random_range`] over integer and float
//! ranges. The generator is xoshiro256++ seeded through splitmix64 —
//! high-quality and deterministic, though the streams differ from the real
//! crate's `StdRng` (all workspace consumers only require determinism for
//! a fixed seed, not any specific stream).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform sample from a range (panics if the range is empty).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A `bool` that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly, yielding `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Maps a `u64` to `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform double in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased sample from `[0, bound)` via Lemire-style rejection.
fn uniform_below<G: RngCore>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let raw = rng.next_u64();
        if raw <= zone {
            return raw % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_below(rng, span + 1);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed with splitmix64, per the xoshiro authors'
            // recommendation.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.random_range(1..=9u32);
            assert!((1..=9).contains(&w));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn coverage_of_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
