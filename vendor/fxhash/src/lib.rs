//! Offline stand-in for the `fxhash` crate.
//!
//! The build environment has no network access, so this vendor crate
//! implements the (tiny) API subset the workspace uses: [`FxHasher`] —
//! the multiply-rotate hash function used by Firefox and rustc — plus the
//! usual `HashMap`/`HashSet` aliases.
//!
//! FxHash is *not* DoS-resistant; it trades collision hardness for raw
//! speed on short keys. That is exactly the right trade for the interned
//! `ValueId(u32)` keys that dominate this workspace's hash maps: a u32
//! key hashes in one multiply-rotate step instead of SipHash's multiple
//! rounds, and the id space is dense and attacker-free (ids are assigned
//! by our own interner, not by external input).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative seed (the "golden ratio" constant used by rustc's
/// FxHasher for 64-bit state).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher: `state = (rotl5(state) ^ word) * SEED`
/// per input word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(42);
        b.write_u32(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u32(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn byte_stream_matches_word_boundaries() {
        // Same logical content hashed as one write must be stable.
        let mut a = FxHasher::default();
        a.write(b"hello world, this crosses an 8-byte chunk");
        let mut b = FxHasher::default();
        b.write(b"hello world, this crosses an 8-byte chunk");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_short_keys_spread() {
        // Sanity: sequential u32 keys don't collapse to one bucket image.
        let hashes: FxHashSet<u64> = (0u32..1000)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u32(i);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 1000);
    }
}
