//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `prop_filter_map` / `boxed`, range and tuple
//! strategies, [`char::ranges`], [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], string strategies from a small regex subset, the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, and a deterministic runner.
//!
//! Differences from the real crate: no shrinking (failures report the
//! raw generated input), no persistence files, and the default case
//! count is 64 (overridable per block with `ProptestConfig::with_cases`
//! or globally with the `PROPTEST_CASES` environment variable).

pub mod test_runner {
    //! Deterministic case runner and configuration.

    use std::fmt::Debug;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runner configuration (only the case count is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running the given number of cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// The runner's generator (xoshiro256++, seeded per test name so
    /// failures reproduce across runs).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator seeded from a test name and case index.
        #[must_use]
        pub fn for_test(name: &str, case: u64) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform sample from `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let raw = self.next_u64();
                if raw <= zone {
                    return raw % bound;
                }
            }
        }

        /// A uniform sample from an inclusive `[lo, hi]` interval.
        pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi - lo;
            if span == u64::MAX {
                return self.next_u64();
            }
            lo + self.below(span + 1)
        }
    }

    /// Run `cases` generated inputs through a test closure. Panics with
    /// the offending input on the first failure.
    pub fn run<S, F>(config: ProptestConfig, name: &str, strategy: S, mut test: F)
    where
        S: crate::strategy::Strategy,
        S::Value: Debug,
        F: FnMut(S::Value) -> Result<(), String>,
    {
        for case in 0..u64::from(config.cases) {
            let mut rng = TestRng::for_test(name, case);
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            match catch_unwind(AssertUnwindSafe(|| test(value))) {
                Ok(Ok(())) => {}
                Ok(Err(message)) => {
                    panic!("proptest `{name}` failed at case {case}\n  input: {shown}\n  {message}")
                }
                Err(payload) => {
                    eprintln!("proptest `{name}` panicked at case {case}\n  input: {shown}");
                    resume_unwind(payload);
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values (no shrinking in this shim).
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from a strategy derived
        /// from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Transform values, discarding (and regenerating) `None`s.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                source: self,
                f,
                reason: reason.into(),
            }
        }

        /// Erase the strategy's type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                generate: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        source: S,
        f: F,
        reason: String,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..1000 {
                if let Some(v) = (self.f)(self.source.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected 1000 consecutive candidates: {}",
                self.reason
            );
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        generate: Box<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.generate)(rng)
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from boxed alternatives (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// String literals are regex strategies (see [`crate::string_gen`]).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string_gen::generate(self, rng)
        }
    }
}

pub mod char {
    //! Character strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::borrow::Cow;
    use std::ops::RangeInclusive;

    /// Uniform choice over a set of character ranges.
    #[derive(Debug, Clone)]
    pub struct CharRanges {
        ranges: Cow<'static, [RangeInclusive<char>]>,
    }

    /// A strategy generating characters from the given ranges.
    #[must_use]
    pub fn ranges(ranges: Cow<'static, [RangeInclusive<char>]>) -> CharRanges {
        assert!(!ranges.is_empty(), "char::ranges needs at least one range");
        CharRanges { ranges }
    }

    impl Strategy for CharRanges {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            loop {
                let idx = rng.below(self.ranges.len() as u64) as usize;
                let r = &self.ranges[idx];
                let (lo, hi) = (*r.start() as u32, *r.end() as u32);
                let code = rng.in_range(u64::from(lo), u64::from(hi)) as u32;
                if let Some(c) = char::from_u32(code) {
                    return c;
                }
                // Landed in the surrogate gap; redraw.
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy producing `None` 25% of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly printable ASCII, occasionally any scalar value.
            if rng.below(8) == 0 {
                loop {
                    if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                        return c;
                    }
                }
            }
            char::from_u32(rng.in_range(0x20, 0x7E) as u32).expect("printable ASCII")
        }
    }

    /// See [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// The whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod string_gen {
    //! String generation from a small regex subset.
    //!
    //! Supports literals, `[...]` classes with ranges, `.` and `\PC`
    //! (printable character), `\d`/`\w`/`\s` classes, and the `*`, `+`,
    //! `?`, `{m}`, `{m,n}`, `{m,}` quantifiers. Unbounded repetitions
    //! draw up to 12 copies.

    use crate::test_runner::TestRng;

    const UNBOUNDED_MAX: u32 = 12;

    enum Atom {
        Literal(char),
        /// Inclusive ranges plus individual chars.
        Class(Vec<(char, char)>),
        Printable,
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    /// Generate one string matching `pattern`.
    #[must_use]
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let count = rng.in_range(u64::from(piece.min), u64::from(piece.max)) as u32;
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let idx = rng.below(ranges.len() as u64) as usize;
                let (lo, hi) = ranges[idx];
                loop {
                    let code = rng.in_range(u64::from(lo as u32), u64::from(hi as u32)) as u32;
                    if let Some(c) = char::from_u32(code) {
                        return c;
                    }
                }
            }
            Atom::Printable => {
                // Printable ASCII with a sprinkling of multi-byte
                // scalars to exercise UTF-8 handling.
                const EXTRAS: [char; 6] = ['é', 'ß', 'λ', '中', '€', '😀'];
                if rng.below(16) == 0 {
                    EXTRAS[rng.below(EXTRAS.len() as u64) as usize]
                } else {
                    char::from_u32(rng.in_range(0x20, 0x7E) as u32).expect("printable ASCII")
                }
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in regex `{pattern}`"));
                    i += 1;
                    match c {
                        'P' => {
                            // `\PC` — "not category Other": printable.
                            if chars.get(i) == Some(&'C') {
                                i += 1;
                            }
                            Atom::Printable
                        }
                        'd' => Atom::Class(vec![('0', '9')]),
                        'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                        's' => Atom::Class(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
                        'n' => Atom::Literal('\n'),
                        't' => Atom::Literal('\t'),
                        other => Atom::Literal(other),
                    }
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        // `a-z` range (a trailing `-` is a literal).
                        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']')
                        {
                            let hi = chars[i + 1];
                            ranges.push((lo, hi));
                            i += 2;
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(
                        chars.get(i) == Some(&']'),
                        "unterminated class in regex `{pattern}`"
                    );
                    i += 1;
                    assert!(!ranges.is_empty(), "empty class in regex `{pattern}`");
                    Atom::Class(ranges)
                }
                '.' => {
                    i += 1;
                    Atom::Printable
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, UNBOUNDED_MAX)
                }
                Some('+') => {
                    i += 1;
                    (1, UNBOUNDED_MAX)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    i += 1;
                    let start = i;
                    while chars.get(i).is_some_and(|&c| c != '}') {
                        i += 1;
                    }
                    let body: String = chars[start..i].iter().collect();
                    assert!(
                        chars.get(i) == Some(&'}'),
                        "unterminated quantifier in regex `{pattern}`"
                    );
                    i += 1;
                    parse_braced_quantifier(&body, pattern)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn parse_braced_quantifier(body: &str, pattern: &str) -> (u32, u32) {
        let parse_u32 = |s: &str| {
            s.trim()
                .parse::<u32>()
                .unwrap_or_else(|_| panic!("bad quantifier `{{{body}}}` in regex `{pattern}`"))
        };
        match body.split_once(',') {
            None => {
                let n = parse_u32(body);
                (n, n)
            }
            Some((lo, "")) => (parse_u32(lo), parse_u32(lo).max(UNBOUNDED_MAX)),
            Some((lo, hi)) => (parse_u32(lo), parse_u32(hi)),
        }
    }
}

/// Assert inside a `proptest!` body; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n  right: {:?}",
                ::std::format!($($fmt)+),
                __left,
                __right
            ));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                $config,
                stringify!($name),
                ($($strategy,)+),
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::char;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::for_test("regex_subset_shapes", 0);
        for _ in 0..200 {
            let s = crate::string_gen::generate("[a-z0-9]{3,20}", &mut rng);
            let n = s.chars().count();
            assert!((3..=20).contains(&n), "bad length {n}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let t = crate::string_gen::generate("[a-zA-Z0-9 .,-]*", &mut rng);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " .,-".contains(c)));
            let _ = crate::string_gen::generate("\\PC*", &mut rng);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_test("x", 3);
        let mut b = TestRng::for_test("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y", 3);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map(c in prop_oneof![Just('a'), Just('b')], n in 1usize..4) {
            prop_assert!(c == 'a' || c == 'b');
            prop_assert_eq!(n.clamp(1, 3), n);
        }

        #[test]
        fn flat_map_square(pair in (1usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k {} must stay below n {}", k, n);
        }

        #[test]
        fn filter_map_retries(x in (0u32..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x))) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn option_of_mixes(o in prop::option::of(0u32..5)) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }
    }
}
