//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness-free subset the bench suite uses: `Criterion`
//! with `sample_size` / `warm_up_time` / `measurement_time` /
//! `configure_from_args` / `benchmark_group` / `final_summary`, groups
//! with `bench_function` / `bench_with_input` / `throughput` / `finish`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and `black_box`.
//!
//! Measurement model: each sample times a fixed batch of iterations and
//! the reported statistics are the minimum / median / maximum of the
//! per-iteration sample means — cruder than criterion's bootstrap, but
//! output lines keep the familiar `time: [lo mid hi]` shape.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// `--bench <filter>`-style substring filter from the command line.
    filter: Option<String>,
    benchmarks_run: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            filter: None,
            benchmarks_run: 0,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (minimum 2).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sampling time budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Honor a benchmark-name substring filter from `argv` (ignores
    /// flags). Mirrors criterion's CLI behavior closely enough for
    /// `cargo bench -- <filter>`.
    #[must_use]
    pub fn configure_from_args(mut self) -> Criterion {
        let args = std::env::args().skip(1);
        for arg in args {
            if arg == "--bench" || arg == "--test" || arg.starts_with("--") {
                continue;
            }
            self.filter = Some(arg);
            break;
        }
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Print the closing summary line.
    pub fn final_summary(&self) {
        println!(
            "criterion (offline shim): {} benchmark(s) measured",
            self.benchmarks_run
        );
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter, rendered `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Measure one benchmark taking a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Finish the group (kept for API parity; drop also suffices).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full_name = format!("{}/{}", self.name, id.render());
        if let Some(filter) = &self.criterion.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            config: BenchConfig {
                sample_size: self.criterion.sample_size,
                warm_up_time: self.criterion.warm_up_time,
                measurement_time: self.criterion.measurement_time,
            },
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        self.criterion.benchmarks_run += 1;
        report(&full_name, &mut bencher.samples_ns, self.throughput);
    }
}

#[derive(Debug, Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    config: BenchConfig,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time a routine: warm up, then collect per-iteration means.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Pick a batch size so one sample stays within the budget.
        let budget = self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / batch as f64);
        }
    }
}

fn report(name: &str, samples_ns: &mut [f64], throughput: Option<Throughput>) {
    if samples_ns.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let lo = samples_ns[0];
    let mid = samples_ns[samples_ns.len() / 2];
    let hi = samples_ns[samples_ns.len() - 1];
    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(mid),
        fmt_ns(hi)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (mid / 1e9);
        line.push_str(&format!("  thrpt: {} {unit}", fmt_rate(rate)));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_end_to_end() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        assert_eq!(c.benchmarks_run, 2);
        c.final_summary();
    }

    #[test]
    fn formatting_units() {
        assert!(fmt_ns(12.3).contains("ns"));
        assert!(fmt_ns(12_300.0).contains("µs"));
        assert!(fmt_ns(12_300_000.0).contains("ms"));
        assert!(fmt_rate(2.5e6).ends_with('M'));
    }
}
