//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text against the vendor `serde` crate's
//! [`Value`] data model. Supports the workspace's usage:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON error (serialization, parsing, or shape mismatch).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    /// 1-based line/column of a parse error, when known.
    position: Option<(usize, usize)>,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
            position: None,
        }
    }

    fn at(message: impl Into<String>, line: usize, column: usize) -> Error {
        Error {
            message: message.into(),
            position: Some((line, column)),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some((line, column)) => {
                write!(f, "{} at line {line} column {column}", self.message)
            }
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    T::from_json_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d);
            })
        }
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                indent,
                depth,
                ('{', '}'),
                |o, (k, v), d| {
                    write_string(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(o, v, indent, d);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    if items.len() == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is the shortest representation that round-trips exactly,
        // and always keeps a decimal point or exponent (matches serde_json).
        out.push_str(&format!("{f:?}"));
    } else {
        // serde_json rejects non-finite floats; emit null like its
        // `json!` macro does for safety.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error::at(message.to_string(), line, column)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.error("expected `,` or `]`"));
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.error("expected `:`"));
            }
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(fields));
            }
            if !self.eat(b',') {
                return Err(self.error("expected `,` or `}`"));
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low half must follow.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos after the digits.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::Int(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert_eq!(from_str::<usize>("3").unwrap(), 3);
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(from_str::<i64>("-5").unwrap(), -5);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        let third = 1.0f64 / 3.0;
        let printed = to_string(&third).unwrap();
        assert_eq!(from_str::<f64>(&printed).unwrap(), third);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&'é').unwrap(), "\"é\"");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![Some("a\nb\"c\\".to_string()), None, Some(String::new())];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<String>>>(&text).unwrap(), v);
        let pairs = vec![("x".to_string(), 1usize), ("y".to_string(), 2)];
        let text = to_string(&pairs).unwrap();
        assert_eq!(text, r#"[["x",1],["y",2]]"#);
        assert_eq!(from_str::<Vec<(String, usize)>>(&text).unwrap(), pairs);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1usize, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Vec<usize>>("[1,\n 2,]").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(from_str::<bool>("truth").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
    }
}
