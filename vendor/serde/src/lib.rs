//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this vendor crate
//! provides the subset of serde's API the workspace uses: `Serialize` /
//! `Deserialize` traits (routed through a JSON-shaped [`Value`] data
//! model rather than serde's visitor machinery), derive macros for
//! structs and enums (re-exported from `serde_derive`), and the
//! container attribute `#[serde(try_from = "...", into = "...")]`.
//!
//! The JSON representation matches real serde's externally-tagged
//! defaults, so documents written by this shim stay readable by the real
//! crate if it is ever swapped back in:
//!
//! * struct → object, enum unit variant → `"Name"`,
//! * newtype variant → `{"Name": value}`, tuple variant → `{"Name": [..]}`,
//! * struct variant → `{"Name": {..}}`, tuples → arrays, `char` → string.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model values serialize into (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String content.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up an object field by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// A type-mismatch error.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Error {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Serialize `self` into a [`Value`].
    fn to_json_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`].
    fn from_json_value(v: &Value) -> Result<Self, Error>;

    /// Hook for absent object fields; only `Option` admits one.
    #[doc(hidden)]
    fn missing_field(name: &str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{name}`")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("boolean", other)),
        }
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(Error::custom("expected single-character string")),
                }
            }
            other => Err(Error::expected("character string", other)),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Int(n) => *n,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        f64::from_json_value(v).map(|f| f as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_json_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        // Sort keys so output is deterministic across runs.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

/// Support code for `serde_derive`-generated impls; not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Deserialize one struct field, honoring `Option`'s missing-field rule.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(inner) => {
                T::from_json_value(inner).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => T::missing_field(name),
        }
    }

    /// Interpret a value as an externally-tagged enum: `"Variant"` or
    /// `{"Variant": payload}`. Returns the variant name and its payload.
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
        match v {
            Value::Str(name) => Ok((name, None)),
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            other => Err(Error::expected("enum variant", other)),
        }
    }

    /// The payload elements of a tuple variant.
    pub fn tuple_payload(v: &Value, arity: usize) -> Result<&[Value], Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if items.len() != arity {
            return Err(Error::custom(format!(
                "expected tuple variant of arity {arity}, found {}",
                items.len()
            )));
        }
        Ok(items)
    }
}
